package engine

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dqm/internal/estimator"
	"dqm/internal/policy"
	"dqm/internal/votelog"
	"dqm/internal/votes"
	"dqm/internal/wal"
	"dqm/internal/window"
	"dqm/internal/xrand"
)

// syntheticBatch builds one task-sized batch of votes over n items.
func syntheticBatch(n, size, round int) []votes.Vote {
	batch := make([]votes.Vote, size)
	for i := range batch {
		label := votes.Clean
		if (round+i)%3 == 0 {
			label = votes.Dirty
		}
		batch[i] = votes.Vote{Item: (round*7 + i) % n, Worker: round % 25, Label: label}
	}
	return batch
}

// BenchmarkSessionIngest measures single-session streaming ingest through
// Append (one lock acquisition per 10-vote task).
func BenchmarkSessionIngest(b *testing.B) {
	const n, batchSize = 10000, 10
	s := NewSession("bench", n, SessionConfig{
		Suite: estimator.SuiteConfig{WithoutHistory: true},
	})
	batches := make([][]votes.Vote, 64)
	for i := range batches {
		batches[i] = syntheticBatch(n, batchSize, i)
	}
	// A registered watch notifier must not cost ingest an allocation: the
	// 0-allocs/op gate below now also covers the hub's wakeup hook.
	notify := make(chan struct{}, 1)
	s.AddNotifier(notify)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(batches[i%len(batches)], true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "votes/s")
}

// benchGateSource adapts the engine session to policy.Source for the gated
// ingest benchmark (the same few-line adapter dqm-serve and dqm-loadgen use).
type benchGateSource struct{ s *Session }

func (g benchGateSource) Version() uint64               { return g.s.Version() }
func (g benchGateSource) Notify(ch chan<- struct{})     { g.s.AddNotifier(ch) }
func (g benchGateSource) StopNotify(ch chan<- struct{}) { g.s.RemoveNotifier(ch) }

func (g benchGateSource) Inputs(need policy.Needs) (policy.Inputs, error) {
	in := policy.Inputs{Version: g.s.Version()}
	est := g.s.Estimates()
	if r := est.Switch.Total - est.Voting; r > 0 {
		in.Remaining = r
	}
	in.SwitchTotal = est.Switch.Total
	in.Tasks = g.s.Tasks()
	in.Votes = g.s.TotalVotes()
	return in, nil
}

// BenchmarkSessionIngestGated is BenchmarkSessionIngest with a quality gate
// attached: an event-driven policy.Gate rides the session's notifier and
// re-evaluates (rate-limited) while ingest runs. The pinned contract is that
// alerting costs the ingest hot path nothing — still 0 allocs/op — because
// the gate's work happens on its own goroutine off a non-blocking cap-1
// wakeup, and MinInterval coalesces per-batch notifications so evaluation
// (and its one JSON encode) amortizes to noise against millions of appends.
func BenchmarkSessionIngestGated(b *testing.B) {
	const n, batchSize = 10000, 10
	s := NewSession("bench", n, SessionConfig{
		Suite: estimator.SuiteConfig{WithoutHistory: true},
	})
	p := &policy.Policy{Rules: []policy.Rule{
		{Name: "remaining-errors", Metric: policy.MetricRemaining, Op: ">", Value: 1e12},
	}}
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	g := policy.NewGate(p, benchGateSource{s}, policy.GateConfig{
		SessionID:   "bench",
		MinInterval: time.Millisecond,
	})
	defer g.Close()
	batches := make([][]votes.Vote, 64)
	for i := range batches {
		batches[i] = syntheticBatch(n, batchSize, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(batches[i%len(batches)], true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "votes/s")
}

// BenchmarkSessionIngestAndEstimate interleaves ingest with estimate reads,
// the serving hot path (append a task, read the metric).
func BenchmarkSessionIngestAndEstimate(b *testing.B) {
	const n, batchSize = 10000, 10
	s := NewSession("bench", n, SessionConfig{
		Suite: estimator.SuiteConfig{WithoutHistory: true},
	})
	batches := make([][]votes.Vote, 64)
	for i := range batches {
		batches[i] = syntheticBatch(n, batchSize, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(batches[i%len(batches)], true); err != nil {
			b.Fatal(err)
		}
		s.Estimates()
	}
}

// BenchmarkEngineParallelIngest measures aggregate throughput with one
// session per worker goroutine — the many-concurrent-datasets shape
// dqm-serve is built for.
func BenchmarkEngineParallelIngest(b *testing.B) {
	const n, batchSize = 10000, 10
	e := New(Config{Shards: 32})
	var sessionID atomic.Int64
	batches := make([][]votes.Vote, 64)
	for i := range batches {
		batches[i] = syntheticBatch(n, batchSize, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprintf("bench-%d", sessionID.Add(1))
		s, err := e.Create(id, n, SessionConfig{
			Suite: estimator.SuiteConfig{WithoutHistory: true},
		})
		if err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			if err := s.Append(batches[i%len(batches)], true); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "votes/s")
}

// BenchmarkEstimatesCached measures the estimate read path: "cold" is the
// full recompute (every estimator re-evaluated — what every read cost before
// the version-guarded cache), "cached" is a lock-free cache hit on an
// unchanged session, and "parallel" is the many-readers shape of dashboard
// fan-out. The acceptance bar is cached ≥ 50x faster than cold.
func BenchmarkEstimatesCached(b *testing.B) {
	// 2M votes over 10k items: the switch/fingerprint state a recompute has
	// to walk is what makes the old read path O(state).
	const n, preTasks = 10000, 200000
	s := NewSession("bench", n, SessionConfig{
		Suite: estimator.SuiteConfig{WithoutHistory: true},
	})
	for i := 0; i < preTasks; i++ {
		if err := s.Append(syntheticBatch(n, 10, i), true); err != nil {
			b.Fatal(err)
		}
	}
	// "cold" is the polling-while-cleaning regime the old read path paid on
	// EVERY poll: the session saw a task boundary since the last read, so
	// every estimator (and the switch tracker's per-task state) must
	// recompute. The 10-vote append is ~0.35 µs of the reported time; the
	// rest is the recompute the cache now amortizes to once per mutation.
	batches := make([][]votes.Vote, 64)
	for i := range batches {
		batches[i] = syntheticBatch(n, 10, i)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Append(batches[i%len(batches)], true); err != nil {
				b.Fatal(err)
			}
			s.Estimates()
		}
	})
	// "idle-recompute" is the old per-poll cost on an UNCHANGED session (no
	// lazy state to rebuild — the best case of the old path).
	b.Run("idle-recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.suite.EstimateAllUncached()
		}
	})
	b.Run("cached", func(b *testing.B) {
		s.Estimates() // publish the cache once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Estimates()
		}
	})
	b.Run("parallel", func(b *testing.B) {
		s.Estimates()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.Estimates()
			}
		})
	})
}

// BenchmarkEstimatesDirty measures the dirty-read path the incremental plane
// targets: every read follows a single-vote mutation, so the memo refreshes
// from the running sufficient statistics instead of walking fingerprints.
// Gated at 0 allocs/op (the vote itself and the refresh both reuse state).
func BenchmarkEstimatesDirty(b *testing.B) {
	const n, preTasks = 10000, 200000
	s := NewSession("bench", n, SessionConfig{
		Suite: estimator.SuiteConfig{WithoutHistory: true},
	})
	for i := 0; i < preTasks; i++ {
		if err := s.Append(syntheticBatch(n, 10, i), true); err != nil {
			b.Fatal(err)
		}
	}
	s.Estimates()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(i%n, i%25, i%3 == 0)
		s.Estimates()
	}
}

// BenchmarkBootstrapCI measures one bootstrap interval over a captured state:
// "serial" on one goroutine, "parallel" over the default worker pool. The
// intervals are bit-identical (pinned by TestBootstrapParallelDeterminism);
// only the wall clock differs.
func BenchmarkBootstrapCI(b *testing.B) {
	const n, preTasks = 10000, 20000
	s := NewSession("bench", n, SessionConfig{
		Suite: estimator.SuiteConfig{
			WithoutHistory: true,
			Switch:         estimator.SwitchConfig{RetainLedgers: true},
		},
	})
	for i := 0; i < preTasks; i++ {
		if err := s.Append(syntheticBatch(n, 10, i), true); err != nil {
			b.Fatal(err)
		}
	}
	st, err := s.suite.Switch.CaptureBootstrap()
	if err != nil {
		b.Fatal(err)
	}
	defer st.Release()
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.Bootstrap(200, 0.95, xrand.New(uint64(i)), workers); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0))
}

// BenchmarkWindowedEstimates measures the windowed dirty-read path: every
// read follows an appended task, so the current pane's suite memo refreshes
// incrementally just like the all-time one.
func BenchmarkWindowedEstimates(b *testing.B) {
	const n, batchSize = 10000, 10
	wcfg := window.Config{Size: 100, Stride: 50, DecayAlpha: 0.3}
	s := NewSession("bench", n, SessionConfig{
		Suite:  estimator.SuiteConfig{WithoutHistory: true},
		Window: &wcfg,
	})
	batches := make([][]votes.Vote, 64)
	for i := range batches {
		batches[i] = syntheticBatch(n, batchSize, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(batches[i%len(batches)], true); err != nil {
			b.Fatal(err)
		}
		if _, err := s.WindowEstimates(window.KindCurrent); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowedIngest measures the ingest-cost multiplier of windowed
// estimation (every vote feeds every open pane).
func BenchmarkWindowedIngest(b *testing.B) {
	const n, batchSize = 10000, 10
	wcfg := window.Config{Size: 100, Stride: 50, DecayAlpha: 0.3}
	s := NewSession("bench", n, SessionConfig{
		Suite:  estimator.SuiteConfig{WithoutHistory: true},
		Window: &wcfg,
	})
	batches := make([][]votes.Vote, 64)
	for i := range batches {
		batches[i] = syntheticBatch(n, batchSize, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(batches[i%len(batches)], true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "votes/s")
}

// BenchmarkColumnarIngest measures binary (DQMV) columnar ingest through
// AppendColumns — the wire bytes journaled verbatim and decoded once into
// reused columns. Compare "memory" against BenchmarkSessionIngest (the same
// 10-vote tasks through the Entry path) for the re-encode savings, and
// "durable" against BenchmarkSessionIngestDurable/batch.
func BenchmarkColumnarIngest(b *testing.B) {
	const n, batchSize = 10000, 10
	raws := make([][]byte, 64)
	for r := range raws {
		batch := syntheticBatch(n, batchSize, r)
		for _, v := range batch {
			raws[r] = votelog.AppendBinaryVote(raws[r], int32(v.Item), int32(v.Worker), v.Label == votes.Dirty)
		}
	}
	run := func(b *testing.B, s *Session) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.AppendColumns(raws[i%len(raws)], true); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "votes/s")
	}
	b.Run("memory", func(b *testing.B) {
		run(b, NewSession("bench", n, SessionConfig{
			Suite: estimator.SuiteConfig{WithoutHistory: true},
		}))
	})
	b.Run("durable", func(b *testing.B) {
		e, err := Open(Config{DataDir: b.TempDir(), WAL: wal.Options{Fsync: wal.FsyncBatch}})
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		s, err := e.Create("bench", n, SessionConfig{
			Suite: estimator.SuiteConfig{WithoutHistory: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		run(b, s)
	})
}

// BenchmarkSessionSnapshot measures the cost of a point-in-time snapshot of
// a loaded session.
func BenchmarkSessionSnapshot(b *testing.B) {
	const n = 10000
	s := NewSession("bench", n, SessionConfig{
		Suite: estimator.SuiteConfig{WithoutHistory: true},
	})
	for i := 0; i < 2000; i++ {
		if err := s.Append(syntheticBatch(n, 10, i), true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Snapshot()
	}
}

// BenchmarkSessionIngestDurable is BenchmarkSessionIngest with a write-ahead
// journal under each fsync policy — the apples-to-apples cost of durability
// on the ingest hot path (BENCHMARKS.md records the ratios).
func BenchmarkSessionIngestDurable(b *testing.B) {
	const n, batchSize = 10000, 10
	for _, p := range []wal.FsyncPolicy{wal.FsyncNever, wal.FsyncBatch, wal.FsyncAlways} {
		b.Run(p.String(), func(b *testing.B) {
			e, err := Open(Config{DataDir: b.TempDir(), WAL: wal.Options{Fsync: p}})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			s, err := e.Create("bench", n, SessionConfig{
				Suite: estimator.SuiteConfig{WithoutHistory: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			batches := make([][]votes.Vote, 64)
			for i := range batches {
				batches[i] = syntheticBatch(n, batchSize, i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(batches[i%len(batches)], true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "votes/s")
		})
	}
}

// BenchmarkRecovery measures the recovery plane. "boot/serial" and
// "boot/parallel" replay a 64-session data dir through Open with
// RecoveryParallelism 1 and GOMAXPROCS respectively (on multi-core hardware
// the parallel ratio is the tentpole number; on one core they coincide).
// "coldload" is the on-demand path: one evicted session replayed per op
// through Load under the per-id singleflight.
func BenchmarkRecovery(b *testing.B) {
	const (
		nSessions = 64
		n         = 1000
		tasks     = 100
		batchSize = 10
	)
	dir := b.TempDir()
	walOpts := wal.Options{Fsync: wal.FsyncNever}
	e, err := Open(Config{DataDir: dir, WAL: walOpts})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%03d", i)
		s, err := e.Create(ids[i], n, SessionConfig{
			Suite: estimator.SuiteConfig{WithoutHistory: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < tasks; t++ {
			if err := s.Append(syntheticBatch(n, batchSize, t), true); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Close(); err != nil {
		b.Fatal(err)
	}

	boot := func(b *testing.B, workers int) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := Open(Config{DataDir: dir, WAL: walOpts, RecoveryParallelism: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if e.Len() != nSessions {
				b.Fatalf("boot recovered %d sessions, want %d", e.Len(), nSessions)
			}
			if err := e.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(nSessions)*float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
		b.ReportMetric(float64(nSessions*tasks*batchSize)*float64(b.N)/b.Elapsed().Seconds(), "votes/s")
	}
	b.Run("boot/serial", func(b *testing.B) { boot(b, 1) })
	b.Run("boot/parallel", func(b *testing.B) { boot(b, 0) })

	b.Run("coldload", func(b *testing.B) {
		// MaxSessions=1: every Load evicts the previous session, so each op is
		// one full journal replay through the singleflight path.
		e, err := Open(Config{DataDir: dir, WAL: walOpts, MaxSessions: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		// Displace whatever boot recovered so the first timed Load is cold too
		// (the loop never asks for the id it just loaded).
		if _, err := e.Load(ids[len(ids)-1]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Load(ids[i%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks*batchSize)*float64(b.N)/b.Elapsed().Seconds(), "votes/s")
	})
}
