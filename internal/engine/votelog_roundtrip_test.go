package engine

import (
	"bytes"
	"reflect"
	"testing"

	"dqm/internal/estimator"
	"dqm/internal/votelog"
	"dqm/internal/votes"
)

// replayIntoSession drives a vote log through a session the way cmd/dqm
// drives a Recorder: one Append per task boundary.
func replayIntoSession(t *testing.T, s *Session, entries []votelog.Entry) {
	t.Helper()
	var batch []votes.Vote
	flush := func() {
		if err := s.Append(batch, true); err != nil {
			t.Fatalf("Append: %v", err)
		}
		batch = batch[:0]
	}
	votelog.Replay(entries,
		func(e votelog.Entry) {
			label := votes.Clean
			if e.Dirty {
				label = votes.Dirty
			}
			batch = append(batch, votes.Vote{Item: e.Item, Worker: e.Worker, Label: label})
		},
		flush)
}

// TestVotelogRoundTripThroughEngine is the satellite coverage: a vote log is
// recorded, serialized, re-read, and replayed through the session engine
// with a snapshot/restore cycle in the middle — estimates must round-trip
// bit-identically at every stage.
func TestVotelogRoundTripThroughEngine(t *testing.T) {
	_, tasks := simTasks(t, 150, 60, 99)
	entries := votelog.FromTasks(tasks)
	n := votelog.MaxItem(entries) + 1

	// Serialize and re-read both encodings; both logs must replay to the
	// same estimates as the in-memory entries.
	var csvBuf, jsonlBuf bytes.Buffer
	if err := votelog.WriteCSV(&csvBuf, entries); err != nil {
		t.Fatal(err)
	}
	if err := votelog.WriteJSONL(&jsonlBuf, entries); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := votelog.ReadCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := votelog.ReadJSONL(&jsonlBuf)
	if err != nil {
		t.Fatal(err)
	}

	want := func(es []votelog.Entry) estimator.Estimates {
		s := NewSession("ref", n, SessionConfig{})
		replayIntoSession(t, s, es)
		return s.Estimates()
	}
	ref := want(entries)
	if got := want(fromCSV); !reflect.DeepEqual(got, ref) {
		t.Fatalf("CSV round trip diverged: %+v != %+v", got, ref)
	}
	if got := want(fromJSONL); !reflect.DeepEqual(got, ref) {
		t.Fatalf("JSONL round trip diverged: %+v != %+v", got, ref)
	}

	// Record → snapshot mid-log → restore → replay the tail: identical
	// estimates to the uninterrupted replay.
	s := NewSession("rt", n, SessionConfig{})
	// Split at a task boundary so the trend series sees the same EndTask
	// sequence in both runs.
	split := 0
	for i := 1; i < len(entries); i++ {
		if entries[i].Task != entries[i-1].Task && i > len(entries)/2 {
			split = i
			break
		}
	}
	if split == 0 {
		t.Fatal("no task boundary found in the second half of the log")
	}
	replayIntoSession(t, s, entries[:split])
	snap := s.Snapshot()
	replayIntoSession(t, s, entries[split:])
	if got := s.Estimates(); !reflect.DeepEqual(got, ref) {
		t.Fatalf("split replay diverged from full replay: %+v != %+v", got, ref)
	}
	if err := s.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	replayIntoSession(t, s, entries[split:])
	if got := s.Estimates(); !reflect.DeepEqual(got, ref) {
		t.Fatalf("restore+replay diverged from full replay: %+v != %+v", got, ref)
	}
}
