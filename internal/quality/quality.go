// Package quality implements the crowd quality-control techniques the paper
// builds on (§1.2): majority voting, Dawid–Skene-style expectation
// maximization for joint worker-skill/true-label inference, and
// inter-worker agreement statistics.
//
// These are not estimators of *remaining* errors — they refine the labels
// of the items the crowd has already seen. The paper's point is that even
// the best consensus over observed items says nothing about unobserved or
// under-voted ones; package estimator answers that question. The two
// compose: EM posteriors can replace raw majority as the "current state"
// that SWITCH corrects, and the agreement statistics quantify how noisy a
// crowd is, which the §6 experiments vary explicitly.
package quality

import (
	"fmt"
	"math"

	"dqm/internal/votes"
)

// WorkerSkill is a per-worker binary confusion model: the probability of
// voting dirty given the item's (latent) true state.
type WorkerSkill struct {
	Worker int
	// Sensitivity = P(vote dirty | truly dirty); 1 − FN rate.
	Sensitivity float64
	// Specificity = P(vote clean | truly clean); 1 − FP rate.
	Specificity float64
	// Votes is how many votes the worker contributed.
	Votes int
}

// Accuracy returns the balanced accuracy (mean of sensitivity and
// specificity).
func (w WorkerSkill) Accuracy() float64 { return (w.Sensitivity + w.Specificity) / 2 }

// BetterThanRandom reports whether the worker satisfies the paper's core
// assumption (sensitivity + specificity > 1, i.e. informative votes).
func (w WorkerSkill) BetterThanRandom() bool { return w.Sensitivity+w.Specificity > 1 }

// EMResult is the output of expectation maximization.
type EMResult struct {
	// Posterior[i] = P(item i dirty | votes, skills). Items with no votes
	// keep the prior.
	Posterior []float64
	// Skills holds the converged per-worker confusion estimates.
	Skills map[int]WorkerSkill
	// Prior is the converged class prior P(dirty).
	Prior float64
	// Iterations actually run before convergence (or the cap).
	Iterations int
}

// Labels thresholds the posteriors at 0.5 into a consensus vector.
func (r *EMResult) Labels() []bool {
	out := make([]bool, len(r.Posterior))
	for i, p := range r.Posterior {
		out[i] = p > 0.5
	}
	return out
}

// EMConfig tunes the EM loop. Zero values select sensible defaults.
type EMConfig struct {
	// MaxIterations caps the EM loop (default 50).
	MaxIterations int
	// Tolerance stops the loop when the max posterior change falls below it
	// (default 1e-6).
	Tolerance float64
	// Smoothing is the pseudo-count regularizer for skill estimates
	// (default 1, Laplace); prevents degenerate 0/1 skills for workers with
	// few votes.
	Smoothing float64
}

func (c *EMConfig) setDefaults() {
	if c.MaxIterations == 0 {
		c.MaxIterations = 50
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
	if c.Smoothing == 0 {
		c.Smoothing = 1
	}
}

// EM runs Dawid–Skene expectation maximization over the votes recorded in
// the matrix, which must retain history (the default). Initialization is
// the majority vote, the standard warm start.
func EM(m *votes.Matrix, cfg EMConfig) (*EMResult, error) {
	cfg.setDefaults()
	n := m.NumItems()
	if n == 0 {
		return &EMResult{Posterior: nil, Skills: map[int]WorkerSkill{}, Prior: 0.5}, nil
	}
	if m.TotalVotes() > 0 && m.History(firstVotedItem(m)) == nil {
		return nil, fmt.Errorf("quality: EM requires vote history (matrix built WithoutHistory)")
	}

	// Initialize posteriors from the (soft) majority.
	post := make([]float64, n)
	for i := 0; i < n; i++ {
		pos, tot := m.Pos(i), m.Seen(i)
		if tot == 0 {
			post[i] = 0.5
			continue
		}
		// Soft majority with add-one smoothing.
		post[i] = (float64(pos) + 1) / (float64(tot) + 2)
	}

	skills := make(map[int]WorkerSkill)
	prior := 0.5
	it := 0
	for ; it < cfg.MaxIterations; it++ {
		// M step: per-worker confusion from current posteriors.
		type acc struct {
			dirtyHit, dirtyTot float64 // Σ post on items the worker marked dirty / saw
			cleanHit, cleanTot float64
			votes              int
		}
		accs := make(map[int]*acc)
		var priorSum float64
		var priorCnt int
		for i := 0; i < n; i++ {
			h := m.History(i)
			if len(h) == 0 {
				continue
			}
			priorSum += post[i]
			priorCnt++
			for _, v := range h {
				a := accs[v.Worker]
				if a == nil {
					a = &acc{}
					accs[v.Worker] = a
				}
				a.votes++
				a.dirtyTot += post[i]
				a.cleanTot += 1 - post[i]
				if v.Label == votes.Dirty {
					a.dirtyHit += post[i]
				} else {
					a.cleanHit += 1 - post[i]
				}
			}
		}
		if priorCnt > 0 {
			prior = priorSum / float64(priorCnt)
		}
		prior = clampProb(prior)
		s := cfg.Smoothing
		for w, a := range accs {
			skills[w] = WorkerSkill{
				Worker:      w,
				Sensitivity: clampProb((a.dirtyHit + s) / (a.dirtyTot + 2*s)),
				Specificity: clampProb((a.cleanHit + s) / (a.cleanTot + 2*s)),
				Votes:       a.votes,
			}
		}

		// E step: item posteriors from skills.
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			h := m.History(i)
			if len(h) == 0 {
				continue
			}
			logDirty := math.Log(prior)
			logClean := math.Log(1 - prior)
			for _, v := range h {
				sk := skills[v.Worker]
				if v.Label == votes.Dirty {
					logDirty += math.Log(sk.Sensitivity)
					logClean += math.Log(1 - sk.Specificity)
				} else {
					logDirty += math.Log(1 - sk.Sensitivity)
					logClean += math.Log(sk.Specificity)
				}
			}
			p := 1 / (1 + math.Exp(logClean-logDirty))
			if d := math.Abs(p - post[i]); d > maxDelta {
				maxDelta = d
			}
			post[i] = p
		}
		if maxDelta < cfg.Tolerance {
			it++
			break
		}
	}

	return &EMResult{Posterior: post, Skills: skills, Prior: prior, Iterations: it}, nil
}

func firstVotedItem(m *votes.Matrix) int {
	for i := 0; i < m.NumItems(); i++ {
		if m.Seen(i) > 0 {
			return i
		}
	}
	return 0
}

func clampProb(p float64) float64 {
	const eps = 1e-6
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// ObservedAgreement returns the mean pairwise agreement across items with
// at least two votes: for each such item, the fraction of concordant vote
// pairs. Returns 0 when no item has two votes.
func ObservedAgreement(m *votes.Matrix) float64 {
	var sum float64
	var items int
	for i := 0; i < m.NumItems(); i++ {
		pos, tot := float64(m.Pos(i)), float64(m.Seen(i))
		if tot < 2 {
			continue
		}
		neg := tot - pos
		pairs := tot * (tot - 1) / 2
		agree := pos*(pos-1)/2 + neg*(neg-1)/2
		sum += agree / pairs
		items++
	}
	if items == 0 {
		return 0
	}
	return sum / float64(items)
}

// FleissKappa computes Fleiss' kappa over the items with at least two
// votes, treating each vote as coming from an interchangeable rater — the
// appropriate form for crowdsourcing where item-rater assignment is random.
// Returns 0 when undefined (no multi-vote items, or no variance).
func FleissKappa(m *votes.Matrix) float64 {
	var pBarSum float64
	var items int
	var dirtyMass, totalMass float64
	for i := 0; i < m.NumItems(); i++ {
		pos, tot := float64(m.Pos(i)), float64(m.Seen(i))
		if tot < 2 {
			continue
		}
		neg := tot - pos
		pBarSum += (pos*(pos-1) + neg*(neg-1)) / (tot * (tot - 1))
		dirtyMass += pos
		totalMass += tot
		items++
	}
	if items == 0 || totalMass == 0 {
		return 0
	}
	pBar := pBarSum / float64(items)
	pDirty := dirtyMass / totalMass
	pe := pDirty*pDirty + (1-pDirty)*(1-pDirty)
	if pe >= 1 {
		return 0
	}
	return (pBar - pe) / (1 - pe)
}

// WorkerAccuracyVsConsensus scores each worker against the current majority
// consensus — the cheap online proxy for skill that deployments use before
// enough data exists for EM. Items where the worker's vote is the sole vote
// are skipped (the consensus would be the vote itself).
func WorkerAccuracyVsConsensus(m *votes.Matrix) map[int]float64 {
	agree := make(map[int]int)
	total := make(map[int]int)
	for i := 0; i < m.NumItems(); i++ {
		h := m.History(i)
		if len(h) < 2 {
			continue
		}
		maj := m.MajorityDirty(i)
		for _, v := range h {
			total[v.Worker]++
			if (v.Label == votes.Dirty) == maj {
				agree[v.Worker]++
			}
		}
	}
	out := make(map[int]float64, len(total))
	for w, t := range total {
		out[w] = float64(agree[w]) / float64(t)
	}
	return out
}
