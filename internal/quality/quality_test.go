package quality

import (
	"math"
	"testing"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// buildMatrix simulates a crowd over a planted population and returns the
// filled matrix plus the truth.
func buildMatrix(t *testing.T, fp, fn float64, tasks int) (*votes.Matrix, *dataset.Population) {
	t.Helper()
	pop := dataset.NewPlantedPopulation(200, 40, 7, "quality")
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: fp, FNRate: fn, Jitter: 0.3},
		ItemsPerTask: 10,
		PoolSize:     15,
		Seed:         7,
	})
	m := votes.NewMatrix(pop.N())
	for _, task := range sim.Tasks(tasks) {
		for _, v := range task.Votes() {
			m.Add(v)
		}
	}
	return m, pop
}

func TestEMBeatsOrMatchesMajority(t *testing.T) {
	m, pop := buildMatrix(t, 0.05, 0.25, 300)
	res, err := EM(m, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	labels := res.Labels()

	majErrs, emErrs := 0, 0
	for i := 0; i < pop.N(); i++ {
		truth := pop.Truth.IsDirty(i)
		if m.MajorityDirty(i) != truth {
			majErrs++
		}
		if labels[i] != truth {
			emErrs++
		}
	}
	if emErrs > majErrs {
		t.Fatalf("EM made %d label errors vs majority's %d", emErrs, majErrs)
	}
}

func TestEMRecoversSkills(t *testing.T) {
	m, _ := buildMatrix(t, 0.05, 0.25, 500)
	res, err := EM(m, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skills) == 0 {
		t.Fatal("no skills estimated")
	}
	// Population-level skill estimates should be near the configured rates:
	// sensitivity ≈ 0.75, specificity ≈ 0.95.
	var sens, spec, w float64
	for _, sk := range res.Skills {
		sens += sk.Sensitivity * float64(sk.Votes)
		spec += sk.Specificity * float64(sk.Votes)
		w += float64(sk.Votes)
		if !sk.BetterThanRandom() {
			t.Fatalf("worker %d estimated worse than random: %+v", sk.Worker, sk)
		}
	}
	sens, spec = sens/w, spec/w
	if math.Abs(sens-0.75) > 0.12 {
		t.Fatalf("mean sensitivity %v, want ≈0.75", sens)
	}
	if math.Abs(spec-0.95) > 0.05 {
		t.Fatalf("mean specificity %v, want ≈0.95", spec)
	}
	// The prior should approach the true dirty fraction (0.2).
	if math.Abs(res.Prior-0.2) > 0.1 {
		t.Fatalf("prior %v, want ≈0.2", res.Prior)
	}
}

func TestEMConverges(t *testing.T) {
	m, _ := buildMatrix(t, 0.02, 0.1, 200)
	res, err := EM(m, EMConfig{MaxIterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 100 {
		t.Fatalf("EM did not converge within 100 iterations")
	}
	for i, p := range res.Posterior {
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("posterior[%d] = %v", i, p)
		}
	}
}

func TestEMEmptyAndUnvoted(t *testing.T) {
	res, err := EM(votes.NewMatrix(0), EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posterior) != 0 {
		t.Fatal("empty matrix should give empty posteriors")
	}
	// Items without votes keep the 0.5 prior.
	m := votes.NewMatrix(3)
	m.Add(votes.Vote{Item: 0, Worker: 0, Label: votes.Dirty})
	res, err = EM(m, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior[1] != 0.5 || res.Posterior[2] != 0.5 {
		t.Fatalf("unvoted items moved off the prior: %v", res.Posterior)
	}
	if res.Posterior[0] <= 0.5 {
		t.Fatalf("voted-dirty item posterior %v not above prior", res.Posterior[0])
	}
}

func TestEMRequiresHistory(t *testing.T) {
	m := votes.NewMatrix(2, votes.WithoutHistory())
	m.Add(votes.Vote{Item: 0, Worker: 0, Label: votes.Dirty})
	if _, err := EM(m, EMConfig{}); err == nil {
		t.Fatal("EM accepted a history-less matrix")
	}
}

func TestWorkerSkillHelpers(t *testing.T) {
	sk := WorkerSkill{Sensitivity: 0.9, Specificity: 0.7}
	if math.Abs(sk.Accuracy()-0.8) > 1e-12 {
		t.Fatalf("Accuracy = %v", sk.Accuracy())
	}
	if !sk.BetterThanRandom() {
		t.Fatal("informative worker flagged as random")
	}
	if (WorkerSkill{Sensitivity: 0.5, Specificity: 0.5}).BetterThanRandom() {
		t.Fatal("coin-flip worker flagged as informative")
	}
}

func TestObservedAgreement(t *testing.T) {
	m := votes.NewMatrix(2)
	// Item 0: 3 dirty votes → perfect agreement.
	for w := 0; w < 3; w++ {
		m.Add(votes.Vote{Item: 0, Worker: w, Label: votes.Dirty})
	}
	if got := ObservedAgreement(m); got != 1 {
		t.Fatalf("unanimous agreement = %v", got)
	}
	// Item 1: 1 dirty, 1 clean → 0 agreement; mean = 0.5.
	m.Add(votes.Vote{Item: 1, Worker: 0, Label: votes.Dirty})
	m.Add(votes.Vote{Item: 1, Worker: 1, Label: votes.Clean})
	if got := ObservedAgreement(m); got != 0.5 {
		t.Fatalf("mean agreement = %v", got)
	}
	if got := ObservedAgreement(votes.NewMatrix(5)); got != 0 {
		t.Fatalf("empty agreement = %v", got)
	}
}

func TestFleissKappaRegimes(t *testing.T) {
	// Perfect raters on a mixed population → high kappa.
	perfect := votes.NewMatrix(10)
	for i := 0; i < 10; i++ {
		label := votes.Clean
		if i < 5 {
			label = votes.Dirty
		}
		for w := 0; w < 4; w++ {
			perfect.Add(votes.Vote{Item: i, Worker: w, Label: label})
		}
	}
	if got := FleissKappa(perfect); got < 0.99 {
		t.Fatalf("perfect-rater kappa = %v", got)
	}

	// Coin-flip raters → kappa near 0.
	rng := xrand.New(1)
	random := votes.NewMatrix(200)
	for i := 0; i < 200; i++ {
		for w := 0; w < 6; w++ {
			random.Add(votes.Vote{Item: i, Worker: w, Label: votes.Label(rng.IntN(2))})
		}
	}
	if got := FleissKappa(random); math.Abs(got) > 0.08 {
		t.Fatalf("random-rater kappa = %v, want ≈0", got)
	}
	if got := FleissKappa(votes.NewMatrix(5)); got != 0 {
		t.Fatalf("empty kappa = %v", got)
	}
}

func TestFleissKappaOrdersCrowdsByQuality(t *testing.T) {
	good, _ := buildMatrix(t, 0.02, 0.05, 400)
	bad, _ := buildMatrix(t, 0.3, 0.4, 400)
	kGood, kBad := FleissKappa(good), FleissKappa(bad)
	if kGood <= kBad {
		t.Fatalf("kappa failed to separate crowds: good %v vs bad %v", kGood, kBad)
	}
}

func TestWorkerAccuracyVsConsensus(t *testing.T) {
	m := votes.NewMatrix(4)
	// Three workers; worker 2 always disagrees with the other two.
	for i := 0; i < 4; i++ {
		m.Add(votes.Vote{Item: i, Worker: 0, Label: votes.Dirty})
		m.Add(votes.Vote{Item: i, Worker: 1, Label: votes.Dirty})
		m.Add(votes.Vote{Item: i, Worker: 2, Label: votes.Clean})
	}
	acc := WorkerAccuracyVsConsensus(m)
	if acc[0] != 1 || acc[1] != 1 {
		t.Fatalf("majority workers scored %v", acc)
	}
	if acc[2] != 0 {
		t.Fatalf("contrarian worker scored %v", acc[2])
	}
	// Single-vote items are excluded.
	m2 := votes.NewMatrix(1)
	m2.Add(votes.Vote{Item: 0, Worker: 5, Label: votes.Dirty})
	if got := WorkerAccuracyVsConsensus(m2); len(got) != 0 {
		t.Fatalf("lone votes scored: %v", got)
	}
}

func TestKappaAndAgreementBounds(t *testing.T) {
	// Property: on arbitrary vote streams, kappa ∈ [-1, 1] and observed
	// agreement ∈ [0, 1].
	rng := xrand.New(99)
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(40)
		m := votes.NewMatrix(n)
		nv := rng.IntN(300)
		for i := 0; i < nv; i++ {
			m.Add(votes.Vote{
				Item:   rng.IntN(n),
				Worker: rng.IntN(6),
				Label:  votes.Label(rng.IntN(2)),
			})
		}
		if k := FleissKappa(m); k < -1.0000001 || k > 1.0000001 || math.IsNaN(k) {
			t.Fatalf("trial %d: kappa = %v", trial, k)
		}
		if a := ObservedAgreement(m); a < 0 || a > 1 || math.IsNaN(a) {
			t.Fatalf("trial %d: agreement = %v", trial, a)
		}
	}
}

func TestEMPosteriorsMonotoneInVotes(t *testing.T) {
	// More dirty votes on an item ⇒ higher posterior, all else equal.
	m := votes.NewMatrix(3)
	for w := 0; w < 4; w++ {
		m.Add(votes.Vote{Item: 0, Worker: w, Label: votes.Dirty})
	}
	m.Add(votes.Vote{Item: 1, Worker: 0, Label: votes.Dirty})
	m.Add(votes.Vote{Item: 1, Worker: 1, Label: votes.Clean})
	for w := 0; w < 4; w++ {
		m.Add(votes.Vote{Item: 2, Worker: w, Label: votes.Clean})
	}
	res, err := EM(m, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Posterior
	if !(p[0] > p[1] && p[1] > p[2]) {
		t.Fatalf("posteriors not ordered: %v", p)
	}
}
