package xrand

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling children produced identical first draws")
	}

	// Children derived in the same order are reproducible regardless of
	// parent draws in between.
	p1 := New(7)
	q1 := p1.Split()
	p1.Uint64() // parent draw must not affect the next child
	q2 := p1.Split()

	p2 := New(7)
	r1 := p2.Split()
	r2 := p2.Split()
	if q1.Uint64() != r1.Uint64() || q2.Uint64() != r2.Uint64() {
		t.Fatal("split children not reproducible")
	}
}

func TestSplitNamedStable(t *testing.T) {
	a := New(9).SplitNamed("workers")
	b := New(9).SplitNamed("workers")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same-named children differ")
	}
	c := New(9).SplitNamed("tasks")
	d := New(9).SplitNamed("workers")
	if c.Uint64() == d.Uint64() {
		t.Fatal("differently named children coincide")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 50; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(2)
	const n, p = 20000, 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.02 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	r := New(3)
	prop := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw % 600)
		s := r.SampleWithoutReplacement(n, k)
		want := k
		if k > n {
			want = n
		}
		if k <= 0 {
			want = 0
		}
		if len(s) != want {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementFloydPath(t *testing.T) {
	r := New(4)
	// k < n/16 forces Floyd's algorithm.
	s := r.SampleWithoutReplacement(10000, 20)
	if len(s) != 20 {
		t.Fatalf("got %d samples", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate %d from Floyd sampling", v)
		}
		seen[v] = true
	}
}

func TestSampleUniformity(t *testing.T) {
	// Every element should appear roughly equally often across repeated
	// small samples.
	r := New(5)
	const n, k, reps = 10, 3, 30000
	counts := make([]int, n)
	for i := 0; i < reps; i++ {
		for _, v := range r.SampleWithoutReplacement(n, k) {
			counts[v]++
		}
	}
	want := float64(reps*k) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("element %d drawn %d times, want ≈%.0f", v, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in permutation", v)
		}
		seen[v] = true
	}
}

func TestSampleSliceAndChoice(t *testing.T) {
	r := New(7)
	items := []string{"a", "b", "c", "d"}
	s := SampleSlice(r, items, 2)
	if len(s) != 2 {
		t.Fatalf("SampleSlice returned %d items", len(s))
	}
	if s[0] == s[1] {
		t.Fatal("SampleSlice returned duplicates")
	}
	got := Choice(r, items)
	found := false
	for _, it := range items {
		if it == got {
			found = true
		}
	}
	if !found {
		t.Fatalf("Choice returned %q, not an element", got)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(8)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 20000; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("weight-3 vs weight-1 ratio %.2f, want ≈3", ratio)
	}
	// All-zero weights degrade to uniform.
	uniform := make([]int, 3)
	for i := 0; i < 3000; i++ {
		uniform[r.WeightedChoice([]float64{0, 0, 0})]++
	}
	for i, c := range uniform {
		if c == 0 {
			t.Fatalf("uniform fallback never drew index %d", i)
		}
	}
}

func TestTruncNormBounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 5000; i++ {
		v := r.TruncNorm(0.5, 0.4, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("TruncNorm out of bounds: %v", v)
		}
	}
	if got := r.TruncNorm(2, 0, 0, 1); got != 1 {
		t.Fatalf("zero-std TruncNorm should clamp mean: got %v", got)
	}
	if got := r.TruncNorm(-1, 0, 0, 1); got != 0 {
		t.Fatalf("zero-std TruncNorm should clamp mean: got %v", got)
	}
}

func TestTruncNormMean(t *testing.T) {
	r := New(10)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.TruncNorm(0.5, 0.1, 0, 1)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("TruncNorm mean %v, want ≈0.5", mean)
	}
}

func TestIntNFloat64Ranges(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(12)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), vals...)
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != len(orig) {
		t.Fatal("shuffle lost elements")
	}
}

// TestSplitAtMatchesSequentialSplit pins the indexed-addressing contract:
// SplitAt(i) on a fresh parent is the (i+1)-th sequential Split, and SplitAt
// never advances the parent's split counter.
func TestSplitAtMatchesSequentialSplit(t *testing.T) {
	const children = 8
	seq := make([]uint64, children)
	{
		parent := New(99)
		for i := range seq {
			seq[i] = parent.Split().Uint64()
		}
	}
	parent := New(99)
	// Query out of order, interleaved, repeatedly: index addressing must not
	// depend on call order or perturb the parent.
	for _, i := range []uint64{3, 0, 7, 3, 1, 6, 2, 5, 4, 0} {
		if got := parent.SplitAt(i).Uint64(); got != seq[i] {
			t.Fatalf("SplitAt(%d) first draw = %d, want sequential child's %d", i, got, seq[i])
		}
	}
	if got, want := parent.Split().Uint64(), seq[0]; got != want {
		t.Fatalf("SplitAt advanced the parent: next Split draw = %d, want %d", got, want)
	}
}

// TestReseedAtMatchesSplitAt: reseeding a scratch RNG in place must reproduce
// the allocated child stream exactly — the 0-alloc hot-loop form the bootstrap
// worker pool relies on.
func TestReseedAtMatchesSplitAt(t *testing.T) {
	parent := New(7)
	scratch := New(0)
	for i := uint64(0); i < 20; i++ {
		want := parent.SplitAt(i)
		scratch.ReseedAt(parent, i)
		for d := 0; d < 16; d++ {
			if g, w := scratch.Uint64(), want.Uint64(); g != w {
				t.Fatalf("child %d draw %d: ReseedAt %d != SplitAt %d", i, d, g, w)
			}
		}
	}
	// A reseeded scratch can itself split (replicates that need sub-streams).
	scratch.ReseedAt(parent, 3)
	if g, w := scratch.Split().Uint64(), parent.SplitAt(3).Split().Uint64(); g != w {
		t.Fatalf("post-reseed Split diverged: %d != %d", g, w)
	}
}

// TestSplitAtConcurrent: SplitAt reads only immutable seed material, so many
// goroutines may address one parent concurrently (run under -race in CI).
func TestSplitAtConcurrent(t *testing.T) {
	parent := New(123)
	want := make([]uint64, 64)
	for i := range want {
		want[i] = parent.SplitAt(uint64(i)).Uint64()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scratch := New(0)
			for i := g; i < len(want); i += 8 {
				if got := parent.SplitAt(uint64(i)).Uint64(); got != want[i] {
					t.Errorf("concurrent SplitAt(%d) = %d, want %d", i, got, want[i])
				}
				scratch.ReseedAt(parent, uint64(i))
				if got := scratch.Uint64(); got != want[i] {
					t.Errorf("concurrent ReseedAt(%d) = %d, want %d", i, got, want[i])
				}
			}
		}(g)
	}
	wg.Wait()
}
