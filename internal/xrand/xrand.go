// Package xrand provides the deterministic randomness substrate used by every
// simulation in this repository.
//
// All experiments in the paper are averaged over r random permutations of the
// task stream, and every worker decision is a Bernoulli draw. To make each
// figure reproducible bit-for-bit, the package wraps math/rand/v2's PCG
// generator behind a splittable source: a parent RNG can derive independent
// child streams (one per worker, one per permutation, ...) so that adding a
// new consumer of randomness does not perturb unrelated draws.
package xrand

import (
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random generator with helpers for the
// sampling patterns used by the crowd simulator and experiment harness.
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
	// seed material retained so children can be derived deterministically.
	hi, lo uint64
	splits uint64
}

// New returns an RNG seeded from a single 64-bit seed.
func New(seed uint64) *RNG {
	return newFrom(seed, 0x9e3779b97f4a7c15^seed)
}

func newFrom(hi, lo uint64) *RNG {
	pcg := rand.NewPCG(hi, lo)
	return &RNG{
		src: rand.New(pcg),
		pcg: pcg,
		hi:  hi,
		lo:  lo,
	}
}

// Split derives an independent child generator. Children derived from the
// same parent in the same order are identical across runs; draws from the
// parent do not affect children and vice versa.
func (r *RNG) Split() *RNG {
	r.splits++
	return newFrom(r.childSeed(r.splits))
}

// childSeed derives the seed pair of the k-th sequential child (k ≥ 1) by
// SplitMix64-style mixing of the parent's seed with the split counter. Shared
// by Split, SplitAt and ReseedAt so indexed and sequential derivation agree.
func (r *RNG) childSeed(k uint64) (hi, lo uint64) {
	z := r.lo + 0x9e3779b97f4a7c15*k
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return r.hi ^ z, z
}

// SplitAt derives the child stream with index i (0-based) without advancing
// the parent's split counter: SplitAt(i) on a fresh parent equals its
// (i+1)-th sequential Split. Because it only reads immutable seed material,
// concurrent SplitAt calls on one parent are safe — the addressing mode a
// worker pool needs to make "replicate i" a pure function of (seed, i),
// independent of how replicates land on workers.
func (r *RNG) SplitAt(i uint64) *RNG {
	return newFrom(r.childSeed(i + 1))
}

// ReseedAt repositions the receiver onto parent's child stream i, reusing the
// receiver's allocations. It is SplitAt for hot loops: a worker derives one
// scratch RNG and reseeds it per replicate instead of allocating b children.
func (r *RNG) ReseedAt(parent *RNG, i uint64) {
	hi, lo := parent.childSeed(i + 1)
	r.hi, r.lo, r.splits = hi, lo, 0
	r.pcg.Seed(hi, lo)
}

// SplitNamed derives a child keyed by a label, so consumers can be added or
// reordered without perturbing each other.
func (r *RNG) SplitNamed(label string) *RNG {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	z := r.lo ^ h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return newFrom(r.hi^h, z)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// NormFloat64 returns a standard normal deviate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). If k >= n it returns a permutation of all n values. The result is
// in random order.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k >= n {
		return r.Perm(n)
	}
	// For small k relative to n, Floyd's algorithm avoids allocating O(n).
	if k < n/16 {
		return r.sampleFloyd(n, k)
	}
	p := r.Perm(n)
	return p[:k]
}

// sampleFloyd implements Robert Floyd's sampling algorithm: k distinct
// integers in [0, n) using O(k) space.
func (r *RNG) sampleFloyd(n, k int) []int {
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.IntN(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Floyd's output has a mild ordering bias; shuffle to restore exchangeability.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SampleSlice returns k distinct elements drawn uniformly from items.
func SampleSlice[T any](r *RNG, items []T, k int) []T {
	idx := r.SampleWithoutReplacement(len(items), k)
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = items[j]
	}
	return out
}

// Choice returns a uniformly chosen element of items. It panics on an empty
// slice.
func Choice[T any](r *RNG, items []T) T {
	return items[r.IntN(len(items))]
}

// WeightedChoice returns an index drawn proportionally to weights. Negative
// weights are treated as zero; if all weights are zero the draw is uniform.
func (r *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.IntN(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// TruncNorm returns a normal deviate with the given mean and standard
// deviation truncated to [lo, hi] by resampling (falling back to clamping
// after a bounded number of attempts).
func (r *RNG) TruncNorm(mean, std, lo, hi float64) float64 {
	if std <= 0 {
		return clamp(mean, lo, hi)
	}
	for i := 0; i < 64; i++ {
		v := mean + std*r.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	return clamp(mean+std*r.NormFloat64(), lo, hi)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
