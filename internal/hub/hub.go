// Package hub is the broadcast plane of the watch API: a per-session fan-out
// hub that turns the engine's version-advance notifications into
// pre-serialized SSE frames, encoded ONCE per published version per view and
// multicast to any number of subscribers.
//
// The shape exists because the per-subscriber alternative is O(N) everything:
// N poll tickers, N identical json.Marshals, N timer wheels churning on idle
// sessions. Here one pump goroutine per watched session waits on the
// session's notifier channel (event-driven — an idle session costs zero CPU
// no matter how many subscribers it has), stamps a publish sequence, and
// wakes subscribers with non-blocking capacity-1 signals. The frame itself is
// encoded lazily by the first consumer that needs it and cached by version,
// so the marshal cost per version is exactly one regardless of subscriber
// count — and the same cache doubles as the conditional-read plane for
// ETag/If-None-Match estimate GETs (Payload).
//
// Subscribers are coalesce-to-latest: each holds a capacity-1 wake signal,
// not a frame queue, and reads the newest cached frame when it decides to
// deliver (after its min-interval). A slow subscriber therefore skips
// intermediate versions — counted in dqm_hub_dropped_total — and can never
// block the pump, the encoder, or other subscribers. Every subscriber
// observes a strictly increasing version subsequence that ends at the
// session's latest version once mutations stop (the pump's final wake after
// the last bump guarantees convergence).
//
// Lifecycle: a hub session is bound to one engine-session incarnation. When
// the underlying session is deleted or LRU-evicted the owner calls Drop,
// which terminates all subscriber streams (Next returns false) instead of
// leaving them silently pinned to a detached object; a revived incarnation
// gets a fresh hub session on the next Subscribe or Payload.
package hub

import (
	"sync"
	"sync/atomic"
	"time"
)

// View selects which estimate variant a subscriber or conditional read wants.
// Each view has its own single-encode frame cache slot.
type View uint8

const (
	// ViewAll is the all-time estimate payload.
	ViewAll View = iota
	// ViewCurrent, ViewLast and ViewDecayed are the windowed variants.
	ViewCurrent
	ViewLast
	ViewDecayed
	// NumViews sizes per-view arrays.
	NumViews
)

// Session is the surface the hub needs from an engine session. Implemented
// by thin adapters over dqm.Session (or fakes in tests).
type Session interface {
	// Version is the session's monotonic mutation counter.
	Version() uint64
	// Pending reports whether mutations are staged but not yet folded into
	// the version counter (staged votes): a cached frame at the current
	// version is stale while Pending, because encoding would merge them.
	Pending() bool
	// Notify/StopNotify register a version-advance signal channel
	// (non-blocking sends; capacity 1 suffices).
	Notify(ch chan<- struct{})
	StopNotify(ch chan<- struct{})
}

// Config parameterizes a Hub.
type Config struct {
	// Resolve looks a live session up by id (false = unknown/deleted).
	Resolve func(id string) (Session, bool)
	// Encode renders one view's payload body at the current version,
	// returning the version the payload is valid for (read BEFORE the
	// payload, so watchers resuming from it re-deliver rather than skip —
	// at-least-once). An error frame still advances subscriber cursors: the
	// error is cached and re-served until the version moves (a windowed view
	// with no completed window yet is the expected case).
	Encode func(s Session, view View) (body []byte, version uint64, err error)
	// Event is the SSE event name frames carry; default "estimates".
	Event string
	// MinInterval is the pump's floor between publish fan-outs per session:
	// bursts of mutations inside one interval coalesce into one wake.
	// Subscribers add their own (longer) per-subscriber interval on top.
	// 0 publishes every notification immediately.
	MinInterval time.Duration
	// Heartbeat is the idle keep-alive period per subscriber; default 15s.
	Heartbeat time.Duration
}

// Hub fans session updates out to subscribers, one sessionHub per watched
// (or conditionally-read) session id.
type Hub struct {
	cfg Config
	// sessions is id -> *sessionHub. A sync.Map so Payload — which rides the
	// GET /estimates hot path — costs one lock-free load; addMu serializes
	// only creation/replacement.
	sessions sync.Map
	addMu    sync.Mutex
}

// New creates a Hub. Resolve and Encode are required.
func New(cfg Config) *Hub {
	if cfg.Resolve == nil || cfg.Encode == nil {
		panic("hub: Config.Resolve and Config.Encode are required")
	}
	if cfg.Event == "" {
		cfg.Event = "estimates"
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	return &Hub{cfg: cfg}
}

// frame is one encoded (version, view) payload, immutable once stored.
type frame struct {
	version uint64
	// seq is the pump publish sequence at encode time; subscribers diff it
	// to count coalesced skips.
	seq uint64
	// pubNano is when the pump published the wake this frame answers,
	// for the fanout-latency histogram.
	pubNano int64
	body    []byte // payload only (conditional reads)
	sse     []byte // full SSE frame: "id: V\nevent: E\ndata: <body>\n\n"
	err     error  // encode failure; body/sse nil, cursor still advances
}

// sessionHub is the per-session broadcast state.
type sessionHub struct {
	h    *Hub
	id   string
	sess Session

	// notify receives the engine's version-advance signals (capacity 1).
	notify chan struct{}

	pubSeq   atomic.Uint64
	wakeNano atomic.Int64

	frames [NumViews]atomic.Pointer[frame]
	encMu  [NumViews]sync.Mutex

	mu       sync.Mutex
	subs     map[*Subscriber]struct{}
	pumpStop chan struct{}
	closed   bool
}

// entry returns the live sessionHub for id, creating one (and registering
// its notifier) on first use. ok=false means the session does not exist.
func (h *Hub) entry(id string) (*sessionHub, bool) {
	if v, ok := h.sessions.Load(id); ok {
		if sh := v.(*sessionHub); !sh.isClosed() {
			return sh, true
		}
	}
	h.addMu.Lock()
	defer h.addMu.Unlock()
	if v, ok := h.sessions.Load(id); ok {
		if sh := v.(*sessionHub); !sh.isClosed() {
			return sh, true
		}
	}
	sess, ok := h.cfg.Resolve(id)
	if !ok {
		return nil, false
	}
	sh := &sessionHub{
		h:      h,
		id:     id,
		sess:   sess,
		notify: make(chan struct{}, 1),
		subs:   make(map[*Subscriber]struct{}),
	}
	sess.Notify(sh.notify)
	h.sessions.Store(id, sh)
	return sh, true
}

func (sh *sessionHub) isClosed() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.closed
}

// Drop terminates the session's hub state: every subscriber's Next returns
// false, the pump stops, the notifier is unregistered, and the frame cache
// is released. Owners call it when the underlying session is deleted or
// evicted; a later Subscribe/Payload re-resolves a fresh incarnation.
func (h *Hub) Drop(id string) {
	v, ok := h.sessions.LoadAndDelete(id)
	if !ok {
		return
	}
	v.(*sessionHub).close()
}

func (sh *sessionHub) close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	if sh.pumpStop != nil {
		close(sh.pumpStop)
		sh.pumpStop = nil
	}
	for sub := range sh.subs {
		close(sub.done)
	}
	sh.subs = nil
	sh.mu.Unlock()
	sh.sess.StopNotify(sh.notify)
}

// frame returns the cached frame for view, encoding at most once per
// version: concurrent consumers double-check under the per-view mutex, so N
// subscribers waking for the same version cost exactly one Encode.
func (sh *sessionHub) frame(view View) *frame {
	v := sh.sess.Version()
	if f := sh.frames[view].Load(); f != nil && f.version >= v && !sh.sess.Pending() {
		return f
	}
	sh.encMu[view].Lock()
	defer sh.encMu[view].Unlock()
	v = sh.sess.Version()
	if f := sh.frames[view].Load(); f != nil && f.version >= v && !sh.sess.Pending() {
		return f
	}
	body, ver, err := sh.h.cfg.Encode(sh.sess, view)
	metricEncodes.Inc()
	f := &frame{
		version: ver,
		seq:     sh.pubSeq.Load(),
		pubNano: sh.wakeNano.Load(),
		err:     err,
	}
	if err == nil {
		f.body = body
		f.sse = appendSSE(nil, sh.h.cfg.Event, ver, body)
	}
	sh.frames[view].Store(f)
	return f
}

// appendSSE renders one SSE frame around an encoded body.
func appendSSE(dst []byte, event string, version uint64, body []byte) []byte {
	dst = append(dst, "id: "...)
	dst = appendUint(dst, version)
	dst = append(dst, "\nevent: "...)
	dst = append(dst, event...)
	dst = append(dst, "\ndata: "...)
	dst = append(dst, body...)
	dst = append(dst, "\n\n"...)
	return dst
}

func appendUint(dst []byte, v uint64) []byte {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

// pump is the per-session publisher: one goroutine, alive while the session
// has subscribers. Each drained notification becomes one publish — a
// sequence stamp plus a non-blocking wake to every subscriber — followed by
// the MinInterval coalescing sleep, during which further notifications pile
// up in the capacity-1 channel and merge into the next publish.
func (sh *sessionHub) pump(stop chan struct{}) {
	var t *time.Timer
	defer func() {
		if t != nil {
			t.Stop()
		}
	}()
	for {
		select {
		case <-stop:
			return
		case <-sh.notify:
		}
		metricPublishes.Inc()
		sh.wakeNano.Store(time.Now().UnixNano())
		sh.pubSeq.Add(1)
		sh.mu.Lock()
		for sub := range sh.subs {
			select {
			case sub.wake <- struct{}{}:
			default:
			}
		}
		sh.mu.Unlock()
		if iv := sh.h.cfg.MinInterval; iv > 0 {
			if t == nil {
				t = time.NewTimer(iv)
			} else {
				t.Reset(iv)
			}
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}
}

func (sh *sessionHub) addSub(sub *Subscriber) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return false
	}
	sh.subs[sub] = struct{}{}
	if sh.pumpStop == nil {
		sh.pumpStop = make(chan struct{})
		go sh.pump(sh.pumpStop)
	}
	return true
}

func (sh *sessionHub) removeSub(sub *Subscriber) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return
	}
	delete(sh.subs, sub)
	if len(sh.subs) == 0 && sh.pumpStop != nil {
		close(sh.pumpStop)
		sh.pumpStop = nil
	}
}

// Subscribe attaches a subscriber to the session's broadcast. cursor is the
// last version the client has seen (0 = none; the newest frame is delivered
// immediately when the version differs — Last-Event-ID resume). minInterval
// is the per-subscriber coalescing floor between deliveries. ok=false means
// the session does not exist.
func (h *Hub) Subscribe(id string, view View, cursor uint64, minInterval time.Duration) (*Subscriber, bool) {
	// Bounded retry: entry() can hand back a sessionHub that a concurrent
	// Drop closes before addSub runs; the next attempt re-resolves.
	for attempt := 0; attempt < 4; attempt++ {
		sh, ok := h.entry(id)
		if !ok {
			return nil, false
		}
		sub := &Subscriber{
			sh:       sh,
			view:     view,
			interval: minInterval,
			cursor:   cursor,
			wake:     make(chan struct{}, 1),
			done:     make(chan struct{}),
			lastBeat: time.Now(),
		}
		if sh.addSub(sub) {
			metricSubscribers.Inc()
			return sub, true
		}
	}
	return nil, false
}

// Payload returns the latest encoded payload body and its version for
// (id, view), riding the same encode-once cache as the broadcast — this is
// the conditional-read plane behind ETag/If-None-Match. ok=false means the
// session does not exist; err is the cached encode error (e.g. a windowed
// view with no completed window).
func (h *Hub) Payload(id string, view View) (body []byte, version uint64, err error, ok bool) {
	sh, ok := h.entry(id)
	if !ok {
		return nil, 0, nil, false
	}
	f := sh.frame(view)
	return f.body, f.version, f.err, true
}

// Event is one delivery from Subscriber.Next.
type Event struct {
	// SSE is the wire-ready chunk: a full estimates frame, or the keep-alive
	// comment for heartbeats.
	SSE []byte
	// Version is the payload's session version (0 for heartbeats).
	Version uint64
	// Skipped counts publishes coalesced away since this subscriber's
	// previous delivery (0 when it kept up).
	Skipped uint64
	// Heartbeat marks an idle keep-alive.
	Heartbeat bool
}

var heartbeatSSE = []byte(": keep-alive\n\n")

// Subscriber is one attached consumer. Not safe for concurrent use: one
// goroutine calls Next in a loop and Close when done.
type Subscriber struct {
	sh       *sessionHub
	view     View
	interval time.Duration

	cursor    uint64
	lastSeq   uint64
	delivered uint64
	skipped   uint64
	lastPush  time.Time
	lastBeat  time.Time

	wake  chan struct{}
	done  chan struct{}
	timer *time.Timer
	once  sync.Once
}

// Close detaches the subscriber. Idempotent; safe after Drop.
func (sub *Subscriber) Close() {
	sub.once.Do(func() {
		sub.sh.removeSub(sub)
		metricSubscribers.Dec()
	})
}

// Stats returns the subscriber's delivered-frame and coalesced-skip counts.
func (sub *Subscriber) Stats() (delivered, skipped uint64) {
	return sub.delivered, sub.skipped
}

// timerC arms the subscriber's reusable timer for d and returns its channel.
func (sub *Subscriber) timerC(d time.Duration) <-chan time.Time {
	if sub.timer == nil {
		sub.timer = time.NewTimer(d)
		return sub.timer.C
	}
	if !sub.timer.Stop() {
		select {
		case <-sub.timer.C:
		default:
		}
	}
	sub.timer.Reset(d)
	return sub.timer.C
}

// Next blocks until there is something to deliver: the newest estimates
// frame once the session's version moves past the cursor (respecting the
// subscriber's min-interval — bursts coalesce to the latest version), or a
// heartbeat after the idle period. ok=false ends the stream: the context is
// done, or the hub dropped the session (delete/evict).
func (sub *Subscriber) Next(ctx interface{ Done() <-chan struct{} }) (Event, bool) {
	for {
		if sub.sh.sess.Version() != sub.cursor {
			if wait := sub.interval - time.Since(sub.lastPush); wait > 0 {
				// Inside the coalescing interval: sleep the remainder, then
				// re-read the latest state (that is what coalesce-to-latest
				// means — the version checked after the sleep, not the one
				// that woke us).
				select {
				case <-ctx.Done():
					return Event{}, false
				case <-sub.done:
					return Event{}, false
				case <-sub.timerC(wait):
				}
				continue
			}
			f := sub.sh.frame(sub.view)
			now := time.Now()
			sub.lastPush, sub.lastBeat = now, now
			prevSeq := sub.lastSeq
			sub.lastSeq = f.seq
			sub.cursor = f.version
			if f.err != nil {
				// Encode failure (windowed view not ready, marshal error —
				// already counted by the encoder): advance silently so the
				// payload is not re-encoded every wake forever.
				continue
			}
			var skipped uint64
			if prevSeq != 0 && f.seq > prevSeq+1 {
				skipped = f.seq - prevSeq - 1
			}
			metricEvents.Inc()
			if skipped > 0 {
				metricDropped.Add(skipped)
			}
			metricQueueDepth.Observe(float64(skipped))
			if sub.delivered > 0 && f.pubNano > 0 {
				metricFanout.Observe(float64(now.UnixNano()-f.pubNano) / 1e9)
			}
			sub.delivered++
			sub.skipped += skipped
			return Event{SSE: f.sse, Version: f.version, Skipped: skipped}, true
		}
		if rem := sub.sh.h.cfg.Heartbeat - time.Since(sub.lastBeat); rem <= 0 {
			sub.lastBeat = time.Now()
			return Event{SSE: heartbeatSSE, Heartbeat: true}, true
		} else {
			select {
			case <-ctx.Done():
				return Event{}, false
			case <-sub.done:
				return Event{}, false
			case <-sub.wake:
			case <-sub.timerC(rem):
			}
		}
	}
}
