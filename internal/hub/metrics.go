package hub

import "dqm/internal/metrics"

// Hot-path counters live on the default registry as package-level vars so
// delivery and encode paths pay a bare atomic add, matching the engine idiom.
var (
	metricEvents = metrics.Default.Counter("dqm_hub_events_total",
		"Estimate frames delivered to hub subscribers.")
	metricPublishes = metrics.Default.Counter("dqm_hub_publishes_total",
		"Version-advance publishes fanned out by session pumps (post-coalescing).")
	metricEncodes = metrics.Default.Counter("dqm_hub_encodes_total",
		"Payload encodes performed by the hub (once per version per view).")
	metricDropped = metrics.Default.Counter("dqm_hub_dropped_total",
		"Publishes coalesced away because subscribers skipped to the latest version.")
	metricSubscribers = metrics.Default.Gauge("dqm_hub_subscribers",
		"Currently attached hub subscribers.")
	metricFanout = metrics.Default.Histogram("dqm_hub_fanout_seconds",
		"Latency from pump publish to subscriber delivery.", metrics.DurationBuckets)
	metricQueueDepth = metrics.Default.Histogram("dqm_hub_queue_depth",
		"Coalesced publish backlog observed at each delivery (0 = subscriber kept up).",
		[]float64{0, 1, 2, 5, 10, 25, 100, 1000})
)
