package hub

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkHubEncodeOnce is the tentpole proof: K subscribers lock-stepped
// over one session, one mutation per iteration. The instrumented encoder
// counts marshals — the reported encodes/version must stay ~1 whether K is
// 1 or 1000, and allocs/op must not scale with K (delivery is a cached-byte
// handoff, not a per-subscriber encode).
func BenchmarkHubEncodeOnce(b *testing.B) {
	for _, subs := range []int{1, 1000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			sess := &fakeSession{}
			var encodes atomic.Int64
			payload := []byte(`{"nominal":120,"voting":117.2,"chao92":131.8,"vchao92":129.4,"switch":130.1,"remaining":10.1,"tasks":64,"votes":320}`)
			h := New(Config{
				Resolve: func(id string) (Session, bool) { return sess, true },
				Encode: func(s Session, view View) ([]byte, uint64, error) {
					v := s.Version()
					encodes.Add(1)
					return payload, v, nil
				},
			})
			defer h.Drop("s")

			var delivered atomic.Int64
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub, ok := h.Subscribe("s", ViewAll, 0, 0)
				if !ok {
					b.Fatalf("Subscribe failed")
				}
				wg.Add(1)
				go func(sub *Subscriber) {
					defer wg.Done()
					defer sub.Close()
					for {
						ev, ok := sub.Next(ctx)
						if !ok {
							return
						}
						if !ev.Heartbeat {
							delivered.Add(1)
						}
					}
				}(sub)
			}

			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				sess.bump()
				target := int64(i+1) * int64(subs)
				for delivered.Load() < target {
					runtimeGosched()
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			cancel()
			wg.Wait()

			perVersion := float64(encodes.Load()) / float64(b.N)
			b.ReportMetric(perVersion, "encodes/version")
			b.ReportMetric(float64(delivered.Load())/elapsed.Seconds(), "events/s")
			// Lock-step leaves no room for coalescing: anything beyond one
			// encode per bump means the cache is broken.
			if perVersion > 1.01 {
				b.Fatalf("encodes/version = %.3f with %d subscribers, want ~1", perVersion, subs)
			}
		})
	}
}

// runtimeGosched is a tiny indirection so the spin-wait reads as intent.
func runtimeGosched() { time.Sleep(5 * time.Microsecond) }
