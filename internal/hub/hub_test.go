package hub

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSession implements Session with the same notifier contract as the
// engine: bump() advances the version and pokes every registered channel
// non-blockingly.
type fakeSession struct {
	version atomic.Uint64
	pending atomic.Bool

	mu        sync.Mutex
	notifiers []chan<- struct{}
}

func (f *fakeSession) Version() uint64 { return f.version.Load() }
func (f *fakeSession) Pending() bool   { return f.pending.Load() }

func (f *fakeSession) Notify(ch chan<- struct{}) {
	f.mu.Lock()
	f.notifiers = append(f.notifiers, ch)
	f.mu.Unlock()
}

func (f *fakeSession) StopNotify(ch chan<- struct{}) {
	f.mu.Lock()
	for i, c := range f.notifiers {
		if c == ch {
			f.notifiers = append(f.notifiers[:i], f.notifiers[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
}

func (f *fakeSession) bump() {
	f.version.Add(1)
	f.mu.Lock()
	for _, ch := range f.notifiers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	f.mu.Unlock()
}

// testHub wires a hub over a single fake session with a counting encoder.
func testHub(t *testing.T, cfg Config) (*Hub, *fakeSession, *atomic.Int64) {
	t.Helper()
	sess := &fakeSession{}
	encodes := &atomic.Int64{}
	if cfg.Resolve == nil {
		cfg.Resolve = func(id string) (Session, bool) {
			if id != "s" {
				return nil, false
			}
			return sess, true
		}
	}
	if cfg.Encode == nil {
		cfg.Encode = func(s Session, view View) ([]byte, uint64, error) {
			v := s.Version()
			encodes.Add(1)
			return []byte(fmt.Sprintf(`{"view":%d,"version":%d}`, view, v)), v, nil
		}
	}
	h := New(cfg)
	t.Cleanup(func() { h.Drop("s") })
	return h, sess, encodes
}

func nextOrFail(t *testing.T, sub *Subscriber, timeout time.Duration) Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ev, ok := sub.Next(ctx)
	if !ok {
		t.Fatalf("Next returned ok=false, want an event")
	}
	return ev
}

func TestSubscribeUnknownSession(t *testing.T) {
	h, _, _ := testHub(t, Config{})
	if _, ok := h.Subscribe("nope", ViewAll, 0, 0); ok {
		t.Fatalf("Subscribe to unknown session succeeded")
	}
	if _, _, _, ok := h.Payload("nope", ViewAll); ok {
		t.Fatalf("Payload for unknown session succeeded")
	}
}

func TestDeliversLatestAndResumes(t *testing.T) {
	h, sess, _ := testHub(t, Config{})
	sess.bump()
	sess.bump()

	sub, ok := h.Subscribe("s", ViewAll, 0, 0)
	if !ok {
		t.Fatalf("Subscribe failed")
	}
	defer sub.Close()

	// Cursor 0, version 2: immediate delivery of the latest frame.
	ev := nextOrFail(t, sub, time.Second)
	if ev.Version != 2 {
		t.Fatalf("Version = %d, want 2", ev.Version)
	}
	want := "id: 2\nevent: estimates\ndata: {\"view\":0,\"version\":2}\n\n"
	if string(ev.SSE) != want {
		t.Fatalf("SSE frame = %q, want %q", ev.SSE, want)
	}

	// A resumed subscriber at the latest cursor sits idle.
	cur, ok := h.Subscribe("s", ViewAll, 2, 0)
	if !ok {
		t.Fatalf("Subscribe failed")
	}
	defer cur.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if _, ok := cur.Next(ctx); ok {
		cancel()
		t.Fatalf("caught-up subscriber delivered an event while idle")
	}
	cancel()

	// A stale cursor re-delivers the latest version (at-least-once).
	old, ok := h.Subscribe("s", ViewAll, 1, 0)
	if !ok {
		t.Fatalf("Subscribe failed")
	}
	defer old.Close()
	if ev := nextOrFail(t, old, time.Second); ev.Version != 2 {
		t.Fatalf("resume Version = %d, want 2", ev.Version)
	}

	// New mutation wakes the idle subscriber without polling.
	go func() {
		time.Sleep(20 * time.Millisecond)
		sess.bump()
	}()
	if ev := nextOrFail(t, sub, time.Second); ev.Version != 3 {
		t.Fatalf("post-bump Version = %d, want 3", ev.Version)
	}
}

func TestEncodeOncePerVersionAcrossSubscribers(t *testing.T) {
	h, sess, encodes := testHub(t, Config{})
	sess.bump()

	const n = 64
	subs := make([]*Subscriber, n)
	for i := range subs {
		sub, ok := h.Subscribe("s", ViewAll, 0, 0)
		if !ok {
			t.Fatalf("Subscribe %d failed", i)
		}
		defer sub.Close()
		subs[i] = sub
	}
	var wg sync.WaitGroup
	for _, sub := range subs {
		wg.Add(1)
		go func(sub *Subscriber) {
			defer wg.Done()
			if ev := nextOrFail(t, sub, 2*time.Second); ev.Version != 1 {
				t.Errorf("Version = %d, want 1", ev.Version)
			}
		}(sub)
	}
	wg.Wait()
	if got := encodes.Load(); got != 1 {
		t.Fatalf("encodes = %d for %d subscribers on one version, want 1", got, n)
	}

	// Distinct views encode separately, still once each.
	if _, _, _, ok := h.Payload("s", ViewCurrent); !ok {
		t.Fatalf("Payload failed")
	}
	if _, _, _, ok := h.Payload("s", ViewCurrent); !ok {
		t.Fatalf("Payload failed")
	}
	if got := encodes.Load(); got != 2 {
		t.Fatalf("encodes = %d after cached second-view reads, want 2", got)
	}
}

func TestCoalesceToLatest(t *testing.T) {
	h, sess, _ := testHub(t, Config{})
	sess.bump()
	sub, ok := h.Subscribe("s", ViewAll, 0, 50*time.Millisecond)
	if !ok {
		t.Fatalf("Subscribe failed")
	}
	defer sub.Close()
	if ev := nextOrFail(t, sub, time.Second); ev.Version != 1 {
		t.Fatalf("Version = %d, want 1", ev.Version)
	}
	// Burst of mutations inside the subscriber's interval: exactly one more
	// delivery, carrying the final version.
	for i := 0; i < 25; i++ {
		sess.bump()
		time.Sleep(time.Millisecond)
	}
	ev := nextOrFail(t, sub, time.Second)
	if ev.Version != 26 {
		t.Fatalf("coalesced Version = %d, want 26", ev.Version)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	if extra, ok := sub.Next(ctx); ok {
		t.Fatalf("expected silence after coalesced delivery, got version %d", extra.Version)
	}
}

func TestDropEndsStream(t *testing.T) {
	h, sess, _ := testHub(t, Config{})
	sess.bump()
	sub, ok := h.Subscribe("s", ViewAll, 1, 0)
	if !ok {
		t.Fatalf("Subscribe failed")
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(context.Background())
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	h.Drop("s")
	select {
	case ok := <-done:
		if ok {
			t.Fatalf("Next returned ok=true after Drop")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Next did not return after Drop")
	}
	sub.Close() // must be safe after Drop

	// The id resolves to a fresh hub session afterwards.
	if _, v, _, ok := h.Payload("s", ViewAll); !ok || v != 1 {
		t.Fatalf("Payload after Drop = (v=%d ok=%v), want v=1 ok=true", v, ok)
	}
}

func TestEncodeErrorAdvancesCursor(t *testing.T) {
	sess := &fakeSession{}
	var encodes atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	h := New(Config{
		Resolve: func(id string) (Session, bool) { return sess, true },
		Encode: func(s Session, view View) ([]byte, uint64, error) {
			v := s.Version()
			encodes.Add(1)
			if fail.Load() {
				return nil, v, errors.New("not ready")
			}
			return []byte(`{}`), v, nil
		},
	})
	defer h.Drop("s")
	sess.bump()
	sub, ok := h.Subscribe("s", ViewAll, 0, 0)
	if !ok {
		t.Fatalf("Subscribe failed")
	}
	defer sub.Close()

	// The failing frame is swallowed; the subscriber parks instead of
	// re-encoding every wake.
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	if _, ok := sub.Next(ctx); ok {
		cancel()
		t.Fatalf("Next delivered an event for a failing encode")
	}
	cancel()
	if got := encodes.Load(); got != 1 {
		t.Fatalf("encodes = %d while parked on error frame, want 1", got)
	}

	// Next version succeeds and is delivered.
	fail.Store(false)
	sess.bump()
	if ev := nextOrFail(t, sub, time.Second); ev.Version != 2 {
		t.Fatalf("Version = %d, want 2", ev.Version)
	}
}

func TestPendingForcesReencode(t *testing.T) {
	h, sess, encodes := testHub(t, Config{})
	sess.bump()
	if _, _, _, ok := h.Payload("s", ViewAll); !ok {
		t.Fatalf("Payload failed")
	}
	if _, _, _, ok := h.Payload("s", ViewAll); !ok {
		t.Fatalf("Payload failed")
	}
	if got := encodes.Load(); got != 1 {
		t.Fatalf("encodes = %d for cached reads, want 1", got)
	}
	// Staged-but-unversioned mutations invalidate the cache.
	sess.pending.Store(true)
	if _, _, _, ok := h.Payload("s", ViewAll); !ok {
		t.Fatalf("Payload failed")
	}
	if got := encodes.Load(); got != 2 {
		t.Fatalf("encodes = %d with pending staged votes, want 2", got)
	}
}

func TestHeartbeatWhenIdle(t *testing.T) {
	h, sess, _ := testHub(t, Config{Heartbeat: 30 * time.Millisecond})
	sess.bump()
	sub, ok := h.Subscribe("s", ViewAll, 1, 0)
	if !ok {
		t.Fatalf("Subscribe failed")
	}
	defer sub.Close()
	ev := nextOrFail(t, sub, time.Second)
	if !ev.Heartbeat {
		t.Fatalf("idle subscriber got a non-heartbeat event: version %d", ev.Version)
	}
	if string(ev.SSE) != ": keep-alive\n\n" {
		t.Fatalf("heartbeat SSE = %q", ev.SSE)
	}
}

// TestMonotonicSubsequenceProperty is the hub's core delivery guarantee:
// under concurrent ingest, every subscriber observes a strictly increasing
// version subsequence that ends at the session's final version.
func TestMonotonicSubsequenceProperty(t *testing.T) {
	h, sess, _ := testHub(t, Config{MinInterval: time.Millisecond})
	const (
		bumps = 300
		nsubs = 8
	)
	var wg sync.WaitGroup
	seqs := make([][]uint64, nsubs)
	for i := 0; i < nsubs; i++ {
		sub, ok := h.Subscribe("s", ViewAll, 0, time.Duration(i)*time.Millisecond)
		if !ok {
			t.Fatalf("Subscribe %d failed", i)
		}
		wg.Add(1)
		go func(i int, sub *Subscriber) {
			defer wg.Done()
			defer sub.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for {
				ev, ok := sub.Next(ctx)
				if !ok {
					return
				}
				if ev.Heartbeat {
					continue
				}
				seqs[i] = append(seqs[i], ev.Version)
				if ev.Version == bumps {
					return
				}
			}
		}(i, sub)
	}
	for v := 0; v < bumps; v++ {
		sess.bump()
		if v%10 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	for i, seq := range seqs {
		if len(seq) == 0 {
			t.Fatalf("subscriber %d observed no versions", i)
		}
		for j := 1; j < len(seq); j++ {
			if seq[j] <= seq[j-1] {
				t.Fatalf("subscriber %d: non-monotonic versions %d -> %d at %d", i, seq[j-1], seq[j], j)
			}
		}
		if last := seq[len(seq)-1]; last != bumps {
			t.Fatalf("subscriber %d ended at version %d, want %d", i, last, bumps)
		}
	}
}

// TestSubscribeUnsubscribeChurn races attach/detach against concurrent
// ingest and a final Drop; run under -race this exercises the pump
// start/stop and close paths.
func TestSubscribeUnsubscribeChurn(t *testing.T) {
	h, sess, _ := testHub(t, Config{})
	stop := make(chan struct{})
	var ingest sync.WaitGroup
	ingest.Add(1)
	go func() {
		defer ingest.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sess.bump()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				sub, ok := h.Subscribe("s", ViewAll, 0, 0)
				if !ok {
					continue // raced with the final Drop
				}
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				sub.Next(ctx)
				cancel()
				sub.Close()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	h.Drop("s") // mid-churn drop: Subscribe must re-resolve or fail cleanly
	wg.Wait()
	close(stop)
	ingest.Wait()
}
