// Package stats implements the statistical substrate of the DQM paper:
// frequency statistics (the "data fingerprint"), Good–Turing sample coverage,
// the Chao92 estimator family, and the scaled error metric used in the
// sensitivity study.
//
// The species-estimation setting: n observations are drawn with replacement
// from an unknown population; c distinct species are observed; f_j counts the
// species seen exactly j times. Chao & Lee (1992) estimate the total number
// of species from (c, f, n). The paper maps "species" to distinct erroneous
// records (Section 3) and later to distinct consensus switches (Section 4).
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Freq holds the frequency statistics (f-statistics) of a sample: Freq[j] is
// f_j, the number of species observed exactly j times. Index 0 is unused and
// always zero.
type Freq []int64

// NewFreqFromCounts builds f-statistics from per-species observation counts.
// Species with a zero (or negative) count are ignored: they were never
// observed and therefore contribute to no frequency class.
func NewFreqFromCounts(counts []int) Freq {
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	f := make(Freq, maxC+1)
	for _, c := range counts {
		if c > 0 {
			f[c]++
		}
	}
	return f
}

// F returns f_j, tolerating out-of-range j.
func (f Freq) F(j int) int64 {
	if j < 1 || j >= len(f) {
		return 0
	}
	return f[j]
}

// Add increments f_j by delta, growing the slice as needed. It panics on
// j < 1. A pointer receiver is required because the slice may be reallocated.
func (f *Freq) Add(j int, delta int64) {
	if j < 1 {
		panic(fmt.Sprintf("stats: frequency class %d < 1", j))
	}
	for len(*f) <= j {
		*f = append(*f, 0)
	}
	(*f)[j] += delta
}

// Promote moves one species from class j to class j+1, the bookkeeping step
// when a species is re-observed. It panics if f_j is already zero, which
// would indicate a corrupted ledger.
func (f *Freq) Promote(j int) {
	if f.F(j) <= 0 {
		panic(fmt.Sprintf("stats: promote from empty frequency class %d", j))
	}
	(*f)[j]--
	f.Add(j+1, 1)
}

// Reset empties every frequency class in place, retaining the slice's
// capacity so streaming consumers can clear between replays without
// reallocating.
func (f *Freq) Reset() {
	if cap(*f) == 0 {
		*f = Freq{0}
		return
	}
	*f = (*f)[:1]
	(*f)[0] = 0
}

// Species returns c = Σ_j f_j, the number of distinct species observed.
func (f Freq) Species() int64 {
	var c int64
	for j := 1; j < len(f); j++ {
		c += f[j]
	}
	return c
}

// Mass returns n = Σ_j j·f_j, the total number of observations accounted for
// by the fingerprint.
func (f Freq) Mass() int64 {
	var n int64
	for j := 1; j < len(f); j++ {
		n += int64(j) * f[j]
	}
	return n
}

// Singletons returns f_1.
func (f Freq) Singletons() int64 { return f.F(1) }

// Doubletons returns f_2.
func (f Freq) Doubletons() int64 { return f.F(2) }

// PairSum returns Σ_j j·(j−1)·f_j, the numerator of the coefficient of
// variation estimate (Equation 5).
func (f Freq) PairSum() int64 {
	var s int64
	for j := 1; j < len(f); j++ {
		s += int64(j) * int64(j-1) * f[j]
	}
	return s
}

// Shift returns the fingerprint shifted by s classes: the returned Freq has
// f'_j = f_{j+s}. Shifting discards the s lowest (most false-positive-prone)
// frequency classes; it is the robustness device behind vChao92
// (Section 3.3). Shift(0) returns a copy.
func (f Freq) Shift(s int) Freq {
	if s < 0 {
		panic(fmt.Sprintf("stats: negative shift %d", s))
	}
	if len(f) <= s+1 {
		return Freq{0}
	}
	out := make(Freq, len(f)-s)
	out[0] = 0
	copy(out[1:], f[1+s:])
	return out
}

// DroppedCount returns Σ_{i=1..s} f_i, the number of species discarded by a
// shift of s. The paper adjusts n by this quantity: n^{+,s} = n⁺ − Σ f_i.
func (f Freq) DroppedCount(s int) int64 {
	var d int64
	for i := 1; i <= s; i++ {
		d += f.F(i)
	}
	return d
}

// DroppedMass returns Σ_{i=1..s} i·f_i, the observation mass carried by the
// discarded classes. This is the mass-preserving alternative adjustment
// discussed in DESIGN.md and ablated in the benchmarks.
func (f Freq) DroppedMass(s int) int64 {
	var d int64
	for i := 1; i <= s; i++ {
		d += int64(i) * f.F(i)
	}
	return d
}

// Clone returns an independent copy.
func (f Freq) Clone() Freq {
	out := make(Freq, len(f))
	copy(out, f)
	return out
}

// String renders the non-zero classes compactly, e.g. "{f1:30 f2:12 f5:1}".
func (f Freq) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for j := 1; j < len(f); j++ {
		if f[j] == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "f%d:%d", j, f[j])
		first = false
	}
	b.WriteByte('}')
	return b.String()
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the species observation
// counts implied by the fingerprint, using the nearest-rank definition. It
// returns 0 when no species were observed.
func (f Freq) Quantile(q float64) int {
	c := f.Species()
	if c == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(c-1)) + 1
	var cum int64
	for j := 1; j < len(f); j++ {
		cum += f[j]
		if cum >= rank {
			return j
		}
	}
	return len(f) - 1
}

// Counts expands the fingerprint back into a sorted multiset of per-species
// counts. Useful in tests for round-tripping.
func (f Freq) Counts() []int {
	out := make([]int, 0, f.Species())
	for j := 1; j < len(f); j++ {
		for k := int64(0); k < f[j]; k++ {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}
