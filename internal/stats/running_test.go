package stats

import (
	"testing"

	"dqm/internal/xrand"
)

// TestRunningFreqMatchesWalks drives a RunningFreq through a random
// Add/Promote/Reset sequence and checks every running aggregate against the
// O(max count) walk over the underlying fingerprint after each step — the
// parity that makes the O(1) estimator inputs exact rather than approximate.
func TestRunningFreqMatchesWalks(t *testing.T) {
	rng := xrand.New(31)
	rf := NewRunningFreq(Freq{0})
	// counts mirrors the per-item counts the matrix would hold, so Promote
	// targets are always classes with at least one species in them.
	counts := map[int]int{}
	check := func(step int) {
		t.Helper()
		f := rf.View()
		if g, w := rf.Species(), f.Species(); g != w {
			t.Fatalf("step %d: Species = %d, walk = %d", step, g, w)
		}
		if g, w := rf.Mass(), f.Mass(); g != w {
			t.Fatalf("step %d: Mass = %d, walk = %d", step, g, w)
		}
		if g, w := rf.PairSum(), f.PairSum(); g != w {
			t.Fatalf("step %d: PairSum = %d, walk = %d", step, g, w)
		}
		if g, w := rf.Singletons(), f.Singletons(); g != w {
			t.Fatalf("step %d: Singletons = %d, walk = %d", step, g, w)
		}
	}
	for step := 0; step < 4000; step++ {
		switch op := rng.IntN(100); {
		case op < 40: // new singleton species
			rf.Add(1, 1)
			counts[len(counts)] = 1
		case op < 85: // promote an existing species
			if len(counts) == 0 {
				continue
			}
			k := rng.IntN(len(counts))
			rf.Promote(counts[k])
			counts[k]++
		case op < 99: // remove a species from its class (matrix relabeling)
			if len(counts) == 0 {
				continue
			}
			k := rng.IntN(len(counts))
			rf.Add(counts[k], -1)
			delete(counts, k)
			// Reindex so keys stay dense for IntN addressing.
			re := map[int]int{}
			for _, c := range counts {
				re[len(re)] = c
			}
			counts = re
		default:
			rf.Reset()
			counts = map[int]int{}
		}
		check(step)
	}
}

// TestShiftedMatchesFreqShift pins the closed-form shifted aggregates against
// the materialized Freq.Shift walk for every shift the V-CHAO member can ask
// for, over random fingerprints.
func TestShiftedMatchesFreqShift(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 200; trial++ {
		rf := NewRunningFreq(Freq{0})
		species := 1 + rng.IntN(40)
		for i := 0; i < species; i++ {
			c := 1 + rng.IntN(8)
			rf.Add(c, 1)
		}
		for s := 0; s <= 6; s++ {
			got := rf.Shifted(s)
			f := rf.View()
			shifted := f.Shift(s)
			if g, w := got.F1, shifted.Singletons(); g != w {
				t.Fatalf("trial %d shift %d: F1 = %d, want %d", trial, s, g, w)
			}
			if g, w := got.Species, shifted.Species(); g != w {
				t.Fatalf("trial %d shift %d: Species = %d, want %d", trial, s, g, w)
			}
			if g, w := got.Mass, shifted.Mass(); g != w {
				t.Fatalf("trial %d shift %d: Mass = %d, want %d", trial, s, g, w)
			}
			if g, w := got.PairSum, shifted.PairSum(); g != w {
				t.Fatalf("trial %d shift %d: PairSum = %d, want %d", trial, s, g, w)
			}
			if g, w := got.DroppedCount, f.DroppedCount(s); g != w {
				t.Fatalf("trial %d shift %d: DroppedCount = %d, want %d", trial, s, g, w)
			}
			if g, w := got.DroppedMass, f.DroppedMass(s); g != w {
				t.Fatalf("trial %d shift %d: DroppedMass = %d, want %d", trial, s, g, w)
			}
		}
	}
}

// TestCloneRunningIndependence: a clone must carry the aggregates and then
// diverge freely from its source.
func TestCloneRunningIndependence(t *testing.T) {
	rf := NewRunningFreq(Freq{0})
	rf.Add(1, 3)
	rf.Promote(1)
	cl := rf.CloneRunning()
	if cl.Species() != rf.Species() || cl.Mass() != rf.Mass() || cl.PairSum() != rf.PairSum() {
		t.Fatal("clone aggregates differ from source")
	}
	cl.Add(1, 5)
	if cl.Species() == rf.Species() {
		t.Fatal("clone mutation leaked into source")
	}
	f := cl.View()
	if cl.Species() != f.Species() || cl.PairSum() != f.PairSum() {
		t.Fatal("clone aggregates out of sync with its fingerprint")
	}
}

// TestChao92FromStatsMatchesFreqPath: the scalar entry point and the
// fingerprint-walking entry point are the same computation.
func TestChao92FromStatsMatchesFreqPath(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 500; trial++ {
		f := Freq{0}
		species := rng.IntN(30)
		for i := 0; i < species; i++ {
			f.Add(1+rng.IntN(6), 1)
		}
		in := Chao92Input{C: f.Species(), F: f, N: f.Mass()}
		want := Chao92(in)
		got := Chao92FromStats(Chao92Stats{C: in.C, F1: f.Singletons(), PairSum: f.PairSum(), N: in.N})
		if got != want {
			t.Fatalf("trial %d: FromStats %+v != Freq path %+v", trial, got, want)
		}
	}
}
