package stats

import "math"

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation, or 0 for fewer than two
// samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both moments in one pass over the data.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), Std(xs)
}

// SRMSE computes the scaled root-mean-square error of Section 6.2:
//
//	SRMSE = (1/D) · sqrt( (1/r) Σ (D̂_i − D)² )
//
// where D is the ground truth and estimates holds the r per-permutation
// estimates D̂_i. The scaling by D makes widely varying estimators
// comparable. It returns 0 when estimates is empty, and +Inf when D = 0 but
// the estimates are not all zero.
func SRMSE(estimates []float64, truth float64) float64 {
	if len(estimates) == 0 {
		return 0
	}
	var s float64
	for _, e := range estimates {
		d := e - truth
		s += d * d
	}
	rmse := math.Sqrt(s / float64(len(estimates)))
	if truth == 0 {
		if rmse == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return rmse / truth
}

// RelativeError returns |est − truth| / truth, or +Inf when truth = 0 and
// est ≠ 0.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / truth
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MeanSeries averages r series point-wise: given rows[i][t] (one row per
// permutation), it returns mean[t] over i. Rows must have equal length.
func MeanSeries(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, row := range rows {
		for t, v := range row {
			out[t] += v
		}
	}
	for t := range out {
		out[t] /= float64(len(rows))
	}
	return out
}

// StdSeries returns the point-wise population standard deviation of the
// rows, the ±1-std band the paper draws around EXTRAPOL.
func StdSeries(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	col := make([]float64, len(rows))
	for t := range out {
		for i, row := range rows {
			col[i] = row[t]
		}
		out[t] = Std(col)
	}
	return out
}
