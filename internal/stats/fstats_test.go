package stats

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewFreqFromCounts(t *testing.T) {
	tests := []struct {
		name   string
		counts []int
		want   Freq
	}{
		{"empty", nil, Freq{0}},
		{"all zero", []int{0, 0}, Freq{0}},
		{"mixed", []int{1, 1, 2, 5, 0}, Freq{0, 2, 1, 0, 0, 1}},
		{"negative ignored", []int{-3, 1}, Freq{0, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewFreqFromCounts(tt.counts)
			if !reflect.DeepEqual(got, tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFreqAccessors(t *testing.T) {
	f := NewFreqFromCounts([]int{1, 1, 1, 2, 2, 7})
	if got := f.F(1); got != 3 {
		t.Fatalf("f1 = %d, want 3", got)
	}
	if got := f.F(2); got != 2 {
		t.Fatalf("f2 = %d, want 2", got)
	}
	if got := f.F(0); got != 0 {
		t.Fatalf("f0 = %d, want 0", got)
	}
	if got := f.F(100); got != 0 {
		t.Fatalf("f100 = %d, want 0", got)
	}
	if got := f.Singletons(); got != 3 {
		t.Fatalf("singletons = %d, want 3", got)
	}
	if got := f.Doubletons(); got != 2 {
		t.Fatalf("doubletons = %d, want 2", got)
	}
	if got := f.Species(); got != 6 {
		t.Fatalf("species = %d, want 6", got)
	}
	if got := f.Mass(); got != 1+1+1+2+2+7 {
		t.Fatalf("mass = %d, want 14", got)
	}
	// PairSum = Σ j(j-1)f_j = 0*3 + 2*2 + 42*1 = 46.
	if got := f.PairSum(); got != 46 {
		t.Fatalf("pairsum = %d, want 46", got)
	}
}

func TestFreqAddAndPromote(t *testing.T) {
	f := Freq{0}
	f.Add(1, 1)
	f.Add(1, 1)
	f.Promote(1) // one singleton becomes a doubleton
	if f.F(1) != 1 || f.F(2) != 1 {
		t.Fatalf("after promote: %v", f)
	}
	f.Promote(2)
	if f.F(2) != 0 || f.F(3) != 1 {
		t.Fatalf("after second promote: %v", f)
	}
}

func TestFreqAddPanicsOnZeroClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(0, …) did not panic")
		}
	}()
	f := Freq{0}
	f.Add(0, 1)
}

func TestFreqPromotePanicsOnEmptyClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Promote on empty class did not panic")
		}
	}()
	f := Freq{0, 0, 1}
	f.Promote(1)
}

func TestFreqShift(t *testing.T) {
	f := Freq{0, 5, 3, 2, 1} // f1..f4
	s1 := f.Shift(1)
	if !reflect.DeepEqual(s1, Freq{0, 3, 2, 1}) {
		t.Fatalf("shift 1 = %v", s1)
	}
	s3 := f.Shift(3)
	if !reflect.DeepEqual(s3, Freq{0, 1}) {
		t.Fatalf("shift 3 = %v", s3)
	}
	if got := f.Shift(0); !reflect.DeepEqual(got, f) {
		t.Fatalf("shift 0 = %v, want identical copy", got)
	}
	if got := f.Shift(10); got.Species() != 0 {
		t.Fatalf("over-shift should empty the fingerprint: %v", got)
	}
}

func TestFreqShiftPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative shift did not panic")
		}
	}()
	Freq{0, 1}.Shift(-1)
}

func TestFreqDropped(t *testing.T) {
	f := Freq{0, 5, 3, 2}
	if got := f.DroppedCount(1); got != 5 {
		t.Fatalf("dropped count s=1: %d", got)
	}
	if got := f.DroppedCount(2); got != 8 {
		t.Fatalf("dropped count s=2: %d", got)
	}
	if got := f.DroppedMass(2); got != 5+6 {
		t.Fatalf("dropped mass s=2: %d", got)
	}
}

func TestFreqCountsRoundTrip(t *testing.T) {
	prop := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, r := range raw {
			counts[i] = int(r % 9) // counts 0..8
		}
		f := NewFreqFromCounts(counts)
		// Species = number of non-zero counts; Mass = sum of counts.
		var wantC, wantN int64
		nonZero := make([]int, 0, len(counts))
		for _, c := range counts {
			if c > 0 {
				wantC++
				wantN += int64(c)
				nonZero = append(nonZero, c)
			}
		}
		if f.Species() != wantC || f.Mass() != wantN {
			return false
		}
		back := f.Counts()
		if len(back) != len(nonZero) {
			return false
		}
		return NewFreqFromCounts(back).String() == f.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFreqQuantile(t *testing.T) {
	f := NewFreqFromCounts([]int{1, 1, 1, 1, 2, 2, 3, 10})
	if got := f.Quantile(0); got != 1 {
		t.Fatalf("q0 = %d", got)
	}
	// Counts sorted: 1,1,1,1,2,2,3,10 — the nearest-rank median is the 4th
	// element, 1.
	if got := f.Quantile(0.5); got != 1 {
		t.Fatalf("q0.5 = %d", got)
	}
	if got := f.Quantile(0.75); got != 2 {
		t.Fatalf("q0.75 = %d", got)
	}
	if got := f.Quantile(1); got != 10 {
		t.Fatalf("q1 = %d", got)
	}
	if got := (Freq{0}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	if got := f.Quantile(-1); got != 1 {
		t.Fatalf("clamped low quantile = %d", got)
	}
	if got := f.Quantile(2); got != 10 {
		t.Fatalf("clamped high quantile = %d", got)
	}
}

func TestFreqString(t *testing.T) {
	f := NewFreqFromCounts([]int{1, 1, 3})
	if got := f.String(); got != "{f1:2 f3:1}" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Freq{0}).String(); got != "{}" {
		t.Fatalf("empty String() = %q", got)
	}
}

func TestFreqCloneIndependent(t *testing.T) {
	f := NewFreqFromCounts([]int{1, 2})
	c := f.Clone()
	c.Add(1, 5)
	if f.F(1) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

// TestPromoteConsistentWithRebuild drives random promote sequences and
// checks the incremental ledger equals a from-scratch rebuild.
func TestPromoteConsistentWithRebuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	counts := make([]int, 50)
	f := Freq{0}
	for step := 0; step < 2000; step++ {
		i := rng.IntN(len(counts))
		if counts[i] == 0 {
			counts[i] = 1
			f.Add(1, 1)
		} else {
			f.Promote(counts[i])
			counts[i]++
		}
		if step%100 == 0 {
			want := NewFreqFromCounts(counts)
			for j := 1; j < len(want) || j < len(f); j++ {
				if f.F(j) != want.F(j) {
					t.Fatalf("step %d: f%d = %d, want %d", step, j, f.F(j), want.F(j))
				}
			}
		}
	}
}
