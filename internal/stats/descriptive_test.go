package stats

import (
	"math"
	"testing"
)

func TestMeanStd(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Std([]float64{5}); got != 0 {
		t.Fatalf("Std of one sample = %v", got)
	}
	if got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", got)
	}
	m, s := MeanStd([]float64{1, 3})
	if m != 2 || s != 1 {
		t.Fatalf("MeanStd = %v, %v", m, s)
	}
}

func TestSRMSE(t *testing.T) {
	// Paper definition: (1/D)·sqrt((1/r)Σ(D̂−D)²).
	ests := []float64{110, 90}
	if got := SRMSE(ests, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("SRMSE = %v, want 0.1", got)
	}
	if got := SRMSE(nil, 100); got != 0 {
		t.Fatalf("SRMSE(nil) = %v", got)
	}
	if got := SRMSE([]float64{0, 0}, 0); got != 0 {
		t.Fatalf("SRMSE all-zero truth-zero = %v", got)
	}
	if got := SRMSE([]float64{5}, 0); !math.IsInf(got, 1) {
		t.Fatalf("SRMSE with zero truth = %v, want +Inf", got)
	}
	// Perfect estimates give zero error.
	if got := SRMSE([]float64{42, 42, 42}, 42); got != 0 {
		t.Fatalf("perfect SRMSE = %v", got)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %v", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(1,0) = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 10); got != 5 {
		t.Fatalf("Clamp mid = %v", got)
	}
	if got := Clamp(-1, 0, 10); got != 0 {
		t.Fatalf("Clamp low = %v", got)
	}
	if got := Clamp(11, 0, 10); got != 10 {
		t.Fatalf("Clamp high = %v", got)
	}
}

func TestMeanSeries(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {3, 4, 5}}
	got := MeanSeries(rows)
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MeanSeries[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if MeanSeries(nil) != nil {
		t.Fatal("MeanSeries(nil) should be nil")
	}
}

func TestStdSeries(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}}
	got := StdSeries(rows)
	if math.Abs(got[0]-1) > 1e-12 {
		t.Fatalf("StdSeries[0] = %v, want 1", got[0])
	}
	if got[1] != 0 {
		t.Fatalf("StdSeries[1] = %v, want 0", got[1])
	}
	if StdSeries(nil) != nil {
		t.Fatal("StdSeries(nil) should be nil")
	}
}
