package stats

// RunningFreq is a Freq that maintains its aggregate statistics — species
// count, observation mass, and the pair sum Σ j(j−1)f_j — incrementally as
// the fingerprint mutates. The Chao92 family consumes exactly these three
// scalars plus f₁, so a RunningFreq turns every estimate from an O(max
// frequency class) walk into an O(1) read. Mutators mirror Freq's (Add,
// Promote, Reset) and keep the aggregates exact; the wrapped Freq remains
// reachable through View for code that needs the full fingerprint.
type RunningFreq struct {
	f       Freq
	species int64
	mass    int64
	pairSum int64
}

// NewRunningFreq wraps an existing fingerprint, paying one full walk to seed
// the aggregates. The fingerprint is NOT copied: the RunningFreq takes
// ownership and the caller must stop mutating f directly.
func NewRunningFreq(f Freq) RunningFreq {
	return RunningFreq{f: f, species: f.Species(), mass: f.Mass(), pairSum: f.PairSum()}
}

// Add increments f_j by delta, updating the running aggregates.
func (r *RunningFreq) Add(j int, delta int64) {
	r.f.Add(j, delta)
	r.species += delta
	r.mass += int64(j) * delta
	r.pairSum += int64(j) * int64(j-1) * delta
}

// Promote moves one species from class j to class j+1. The species count is
// unchanged; the mass grows by one observation and the pair sum by
// (j+1)j − j(j−1) = 2j.
func (r *RunningFreq) Promote(j int) {
	r.f.Promote(j)
	r.mass++
	r.pairSum += 2 * int64(j)
}

// Reset empties the fingerprint in place (retaining capacity) and zeroes the
// aggregates.
func (r *RunningFreq) Reset() {
	r.f.Reset()
	r.species, r.mass, r.pairSum = 0, 0, 0
}

// View returns the underlying fingerprint without copying. Callers must not
// mutate it; doing so would desynchronize the aggregates.
func (r *RunningFreq) View() Freq { return r.f }

// Clone returns an independent copy of the underlying fingerprint.
func (r *RunningFreq) Clone() Freq { return r.f.Clone() }

// CloneRunning returns an independent RunningFreq with the same state.
func (r *RunningFreq) CloneRunning() RunningFreq {
	return RunningFreq{f: r.f.Clone(), species: r.species, mass: r.mass, pairSum: r.pairSum}
}

// F returns f_j.
func (r *RunningFreq) F(j int) int64 { return r.f.F(j) }

// Species returns c = Σ f_j in O(1).
func (r *RunningFreq) Species() int64 { return r.species }

// Mass returns n = Σ j·f_j in O(1).
func (r *RunningFreq) Mass() int64 { return r.mass }

// PairSum returns Σ j(j−1)·f_j in O(1).
func (r *RunningFreq) PairSum() int64 { return r.pairSum }

// Singletons returns f₁.
func (r *RunningFreq) Singletons() int64 { return r.f.F(1) }

// Doubletons returns f₂.
func (r *RunningFreq) Doubletons() int64 { return r.f.F(2) }

// ShiftedStats carries the aggregate statistics of a fingerprint shifted by s
// classes (f'_j = f_{j+s}, the vChao92 device) without materializing the
// shifted Freq.
type ShiftedStats struct {
	F1           int64 // f'_1 = f_{1+s}
	Species      int64 // Σ f'_j
	Mass         int64 // Σ j·f'_j
	PairSum      int64 // Σ j(j−1)·f'_j
	DroppedCount int64 // Σ_{i≤s} f_i, the species discarded by the shift
	DroppedMass  int64 // Σ_{i≤s} i·f_i, the observation mass discarded
}

// Shifted computes the statistics of the s-shifted fingerprint in O(s) using
// the closed forms
//
//	Species' = Species − Σ_{k≤s} f_k
//	Mass'    = Σ_{k>s} (k−s)·f_k = (Mass − DroppedMass) − s·Species'
//	PairSum' = Σ_{k>s} (k−s)(k−s−1)·f_k
//	         = (PairSum − Σ_{k≤s} k(k−1)f_k) − 2s·(Mass − DroppedMass) + s(s+1)·Species'
//
// which agree with Freq.Shift followed by full walks (pinned by tests).
func (r *RunningFreq) Shifted(s int) ShiftedStats {
	if s < 0 {
		panic("stats: negative shift")
	}
	if s == 0 {
		return ShiftedStats{
			F1:      r.f.F(1),
			Species: r.species,
			Mass:    r.mass,
			PairSum: r.pairSum,
		}
	}
	var dropped, droppedMass, droppedPair int64
	for k := 1; k <= s; k++ {
		fk := r.f.F(k)
		dropped += fk
		droppedMass += int64(k) * fk
		droppedPair += int64(k) * int64(k-1) * fk
	}
	sp := r.species - dropped
	s64 := int64(s)
	return ShiftedStats{
		F1:           r.f.F(1 + s),
		Species:      sp,
		Mass:         (r.mass - droppedMass) - s64*sp,
		PairSum:      (r.pairSum - droppedPair) - 2*s64*(r.mass-droppedMass) + s64*(s64+1)*sp,
		DroppedCount: dropped,
		DroppedMass:  droppedMass,
	}
}
