package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCoverage(t *testing.T) {
	tests := []struct {
		name       string
		singletons int64
		n          int64
		want       float64
	}{
		{"no observations", 0, 0, 0},
		{"no singletons", 0, 100, 1},
		{"paper example 1", 30, 180, 1 - 30.0/180},
		{"all singletons", 50, 50, 0},
		{"corrupt clamps", 80, 50, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Coverage(tt.singletons, tt.n); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Coverage(%d,%d) = %v, want %v", tt.singletons, tt.n, got, tt.want)
			}
		})
	}
}

// TestChao92PaperExample1 reproduces the arithmetic of Example 1 (§3.2.1):
// c=83, f1=30, n⁺=180 give a remaining-error estimate of ≈16.6 under the
// no-skew form.
func TestChao92PaperExample1(t *testing.T) {
	f := Freq{0}
	f.Add(1, 30)
	// The remaining mass of the fingerprint is arbitrary for the no-skew
	// estimate as long as n is fixed; fill to match n = 180 with doubletons
	// and heavier classes: 83 species totalling 180 observations.
	// 30 singletons leave 53 species and 150 observations: use 23
	// doubletons and 30 species at ~3.47 — instead pin exact integers:
	// 30×1 + 23×2 + 26×3 + 4×6.5 is not integral either, so assemble
	// directly: 30×1 + 24×2 + 25×3 + 3×7 + 1×6 = 30+48+75+21+6 = 180,
	// species = 30+24+25+3+1 = 83.
	f.Add(2, 24)
	f.Add(3, 25)
	f.Add(7, 3)
	f.Add(6, 1)
	if f.Species() != 83 || f.Mass() != 180 {
		t.Fatalf("fingerprint setup wrong: c=%d n=%d", f.Species(), f.Mass())
	}
	r := Chao92NoSkew(Chao92Input{C: 83, F: f, N: 180})
	remaining := r.Estimate - 83
	if math.Abs(remaining-16.6) > 0.1 {
		t.Fatalf("remaining = %v, want ≈16.6", remaining)
	}
}

// TestChao92PaperExample2 reproduces Example 2: with 1% false positives the
// counts become c=102, f1=46, n⁺=208 and the total estimate inflates to
// ≈131 (the paper's 30% overestimate of the 100 true errors).
func TestChao92PaperExample2(t *testing.T) {
	got := 102 / (1 - 46.0/208)
	if math.Abs(got-131) > 1 {
		t.Fatalf("example-2 arithmetic: %v, want ≈131", got)
	}
	f := Freq{0}
	f.Add(1, 46)
	// 56 more species carrying 162 observations: 52×3 + 4×1.5 — assemble
	// integrally: 46×1 + 50×3 + 6×2 = 46+150+12 = 208, species 102.
	f.Add(3, 50)
	f.Add(2, 6)
	if f.Species() != 102 || f.Mass() != 208 {
		t.Fatalf("fingerprint setup wrong: c=%d n=%d", f.Species(), f.Mass())
	}
	r := Chao92NoSkew(Chao92Input{C: 102, F: f, N: 208})
	if math.Abs(r.Estimate-131) > 1 {
		t.Fatalf("estimate = %v, want ≈131", r.Estimate)
	}
}

func TestChao92Degenerate(t *testing.T) {
	if r := Chao92(Chao92Input{}); r.Estimate != 0 {
		t.Fatalf("empty input estimate = %v", r.Estimate)
	}
	f := Freq{0, 5} // every observation a singleton
	r := Chao92(Chao92Input{C: 5, F: f, N: 5})
	if !r.Saturated {
		t.Fatal("zero-coverage input not flagged as saturated")
	}
	if math.IsInf(r.Estimate, 0) || math.IsNaN(r.Estimate) {
		t.Fatalf("saturated estimate not finite: %v", r.Estimate)
	}
	if r.Estimate < 5 {
		t.Fatalf("saturated estimate %v below observed species", r.Estimate)
	}
}

func TestChao92AtLeastObserved(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	prop := func(seed uint64) bool {
		// Random plausible fingerprints: some species with counts 1..6.
		f := Freq{0}
		c := int64(0)
		for j := 1; j <= 6; j++ {
			k := int64(rng.IntN(20))
			if k > 0 {
				f.Add(j, k)
				c += k
			}
		}
		if c == 0 {
			return true
		}
		in := Chao92Input{C: c, F: f, N: f.Mass()}
		full := Chao92(in)
		noskew := Chao92NoSkew(in)
		if full.Saturated {
			return full.Estimate >= float64(c)
		}
		// Estimates never fall below the observed species count, and the
		// skew correction only adds mass.
		return full.Estimate >= float64(c)-1e-9 && full.Estimate >= noskew.Estimate-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCV2(t *testing.T) {
	// A perfectly homogeneous sample (all doubletons) has γ̂² = 0.
	f := Freq{0, 0, 10}
	if got := CV2(10, f, 20); got != 0 {
		t.Fatalf("homogeneous CV2 = %v", got)
	}
	// Skewed fingerprints produce positive γ̂².
	skewed := Freq{0, 30, 0, 0, 0, 0, 0, 0, 0, 0, 5} // 30 singletons, 5 ten-times
	if got := CV2(35, skewed, 80); got <= 0 {
		t.Fatalf("skewed CV2 = %v, want > 0", got)
	}
	if got := CV2(5, Freq{0, 5}, 1); got != 0 {
		t.Fatalf("n≤1 CV2 = %v", got)
	}
	// Zero coverage (all singletons) must not NaN.
	if got := CV2(5, Freq{0, 5}, 5); got != 0 {
		t.Fatalf("zero-coverage CV2 = %v", got)
	}
}

func TestChao92SkewCorrectionIncreases(t *testing.T) {
	f := Freq{0, 40, 5, 2, 0, 0, 0, 0, 2} // strongly skewed
	in := Chao92Input{C: f.Species(), F: f, N: f.Mass()}
	full := Chao92(in)
	noskew := Chao92NoSkew(in)
	if full.Estimate < noskew.Estimate {
		t.Fatalf("skew correction decreased the estimate: %v < %v", full.Estimate, noskew.Estimate)
	}
	if full.CV2 <= 0 {
		t.Fatalf("expected positive CV2, got %v", full.CV2)
	}
}

func TestChao84(t *testing.T) {
	f := Freq{0, 4, 2} // f1=4, f2=2
	if got := Chao84(6, f); math.Abs(got-(6+16.0/4)) > 1e-12 {
		t.Fatalf("Chao84 = %v", got)
	}
	// f2 = 0 uses the bias-corrected form c + f1(f1−1)/2.
	f0 := Freq{0, 3}
	if got := Chao84(3, f0); math.Abs(got-(3+3)) > 1e-12 {
		t.Fatalf("Chao84 bias-corrected = %v", got)
	}
}

func TestJackknife(t *testing.T) {
	f := Freq{0, 4, 2}
	if got := Jackknife1(6, f, 8); math.Abs(got-(6+4*7.0/8)) > 1e-12 {
		t.Fatalf("Jackknife1 = %v", got)
	}
	if got := Jackknife1(6, f, 0); got != 6 {
		t.Fatalf("Jackknife1 with n=0 = %v", got)
	}
	j2 := Jackknife2(6, f, 8)
	want := 6 + 4*(2*8.0-3)/8 - 2*(8.0-2)*(8.0-2)/(8*7)
	if math.Abs(j2-want) > 1e-12 {
		t.Fatalf("Jackknife2 = %v, want %v", j2, want)
	}
	if got := Jackknife2(6, f, 1); got != Jackknife1(6, f, 1) {
		t.Fatalf("Jackknife2 with n=1 should fall back: %v", got)
	}
}

// TestChao92RecoversTrueRichness simulates the estimator's core guarantee:
// sampling species uniformly with replacement, the estimate approaches the
// true species count as coverage grows.
func TestChao92RecoversTrueRichness(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	const trueSpecies = 200
	counts := make([]int, trueSpecies)
	for draws := 0; draws < 1200; draws++ {
		counts[rng.IntN(trueSpecies)]++
	}
	f := NewFreqFromCounts(counts)
	in := Chao92Input{C: f.Species(), F: f, N: f.Mass()}
	r := Chao92(in)
	if math.Abs(r.Estimate-trueSpecies) > 0.15*trueSpecies {
		t.Fatalf("estimate %v not within 15%% of %d (coverage %v)", r.Estimate, trueSpecies, r.Coverage)
	}
}

func TestACE(t *testing.T) {
	// Empty fingerprint.
	if got := ACE(Freq{0}); got != 0 {
		t.Fatalf("empty ACE = %v", got)
	}
	// Abundant-only fingerprint: estimate equals observed.
	abundant := Freq{0}
	abundant.Add(15, 7)
	if got := ACE(abundant); got != 7 {
		t.Fatalf("abundant-only ACE = %v", got)
	}
	// All-singleton rare group falls back to the Chao84 bound, finite.
	singles := Freq{0, 12}
	got := ACE(singles)
	if math.IsInf(got, 0) || math.IsNaN(got) || got < 12 {
		t.Fatalf("all-singleton ACE = %v", got)
	}
	// A homogeneous sample with good coverage estimates close to c.
	homog := Freq{0, 0, 0, 20} // 20 species seen 3 times each
	if got := ACE(homog); math.Abs(got-20) > 1 {
		t.Fatalf("homogeneous ACE = %v, want ≈20", got)
	}
}

func TestACERecoversTrueRichness(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	const trueSpecies = 150
	counts := make([]int, trueSpecies)
	for draws := 0; draws < 900; draws++ {
		counts[rng.IntN(trueSpecies)]++
	}
	f := NewFreqFromCounts(counts)
	got := ACE(f)
	if math.Abs(got-trueSpecies) > 0.2*trueSpecies {
		t.Fatalf("ACE %v not within 20%% of %d", got, trueSpecies)
	}
}
