package stats

import "math"

// Coverage returns the Good–Turing sample coverage estimate
// Ĉ = 1 − f₁/n (Equation 2). The coverage is the probability mass of the
// species already observed; f₁/n estimates the mass still unseen.
//
// Edge cases: with no observations the coverage is defined as 0 (nothing is
// covered); the result is clamped to [0, 1] because a corrupted fingerprint
// with f₁ > n must not produce a negative coverage.
func Coverage(singletons, n int64) float64 {
	if n <= 0 {
		return 0
	}
	c := 1 - float64(singletons)/float64(n)
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// CV2 returns the squared coefficient-of-variation estimate γ̂² of
// Equation 5:
//
//	γ̂² = max( (c/Ĉ) · Σ j(j−1)f_j / (n(n−1)) − 1, 0 )
//
// It measures the skew of the species abundance distribution; γ̂² = 0
// corresponds to the homogeneous (no-skew) model.
func CV2(c int64, f Freq, n int64) float64 {
	return CV2FromStats(c, f.Singletons(), f.PairSum(), n)
}

// CV2FromStats is CV2 taking the two fingerprint aggregates (f₁ and the pair
// sum Σ j(j−1)f_j) directly, for callers that maintain them incrementally
// (RunningFreq). CV2 delegates here, so the two paths share one float
// expression and agree bit for bit.
func CV2FromStats(c, f1, pairSum, n int64) float64 {
	if n <= 1 {
		return 0
	}
	cov := Coverage(f1, n)
	if cov == 0 {
		return 0
	}
	g := float64(c) / cov * float64(pairSum) / (float64(n) * float64(n-1))
	g -= 1
	if g < 0 || math.IsNaN(g) {
		return 0
	}
	return g
}

// Chao92Input bundles the three quantities the Chao92 family consumes. The
// caller chooses what plays the role of c, f and n: observed unique errors
// with positive-vote statistics (Section 3), or consensus switches with the
// switch fingerprint (Section 4).
type Chao92Input struct {
	// C is the number of distinct species observed (c in the paper). The
	// paper sometimes decouples it from the fingerprint (e.g. vChao92 uses
	// c_majority with shifted f-statistics), hence it is explicit.
	C int64
	// F is the frequency fingerprint.
	F Freq
	// N is the number of observations (n⁺ for error estimation, n_switch for
	// switch estimation).
	N int64
}

// Chao92Result carries the estimate plus its intermediates for logging and
// testing.
type Chao92Result struct {
	Estimate  float64 // D̂, the estimated total number of species
	Coverage  float64 // Ĉ
	CV2       float64 // γ̂²
	Saturated bool    // true when Ĉ = 0 and the estimate was capped
}

// chao92MaxBlowup bounds the estimate when the sample coverage collapses to
// zero (every observation a singleton). The estimator is undefined there; the
// paper's simulations simply report very large values. We cap at C·(N+1) so
// downstream averaging stays finite, and flag the saturation.
const chao92MaxBlowup = 1 << 20

// Chao92 computes the full estimator of Equation 4:
//
//	D̂ = c/Ĉ + f₁·γ̂²/Ĉ
//
// where Ĉ = 1 − f₁/n and γ̂² is CV2. With γ̂² = 0 this degrades to the
// homogeneous estimator D̂_noskew = c/Ĉ (Equations 1–3).
func Chao92(in Chao92Input) Chao92Result {
	return Chao92FromStats(Chao92Stats{
		C: in.C, F1: in.F.Singletons(), PairSum: in.F.PairSum(), N: in.N,
	})
}

// Chao92Stats is the sufficient statistic of the Chao92 family: the estimator
// reads nothing from the fingerprint beyond f₁ and Σ j(j−1)f_j. Callers that
// maintain these incrementally (RunningFreq) skip the fingerprint walks
// entirely.
type Chao92Stats struct {
	C       int64 // distinct species observed
	F1      int64 // singleton count f₁
	PairSum int64 // Σ j(j−1)·f_j
	N       int64 // observation count
}

// Chao92FromStats computes the full estimator from the sufficient statistic.
// Chao92 delegates here, so the Freq-walking and incremental paths share one
// float expression and agree bit for bit.
func Chao92FromStats(in Chao92Stats) Chao92Result {
	if in.C <= 0 || in.N <= 0 {
		return Chao92Result{}
	}
	cov := Coverage(in.F1, in.N)
	if cov == 0 {
		// Zero coverage: every observation is a singleton; the estimate
		// diverges. Report a large, finite, flagged value.
		return Chao92Result{
			Estimate:  float64(in.C) * float64(minI64(in.N+1, chao92MaxBlowup)),
			Coverage:  0,
			Saturated: true,
		}
	}
	cv2 := CV2FromStats(in.C, in.F1, in.PairSum, in.N)
	est := float64(in.C)/cov + float64(in.F1)*cv2/cov
	return Chao92Result{Estimate: est, Coverage: cov, CV2: cv2}
}

// Chao92NoSkew computes D̂_noskew = c/Ĉ (Equation 3), the homogeneous-model
// estimator, also used by the paper as D̂_GT in Section 5.2.
func Chao92NoSkew(in Chao92Input) Chao92Result {
	r := Chao92(in)
	if r.Saturated {
		return r
	}
	r.Estimate = float64(in.C) / r.Coverage
	return r
}

// Chao92NoSkewFromStats is Chao92NoSkew over the sufficient statistic.
func Chao92NoSkewFromStats(in Chao92Stats) Chao92Result {
	r := Chao92FromStats(in)
	if r.Saturated {
		return r
	}
	r.Estimate = float64(in.C) / r.Coverage
	return r
}

// Chao84 computes the earlier Chao1 (1984) lower-bound estimator
// D̂ = c + f₁²/(2·f₂), included as an additional baseline for the ablation
// benchmarks. When f₂ = 0 the bias-corrected form c + f₁(f₁−1)/2 is used.
func Chao84(c int64, f Freq) float64 {
	f1, f2 := float64(f.Singletons()), float64(f.Doubletons())
	if f2 > 0 {
		return float64(c) + f1*f1/(2*f2)
	}
	return float64(c) + f1*(f1-1)/2
}

// Jackknife1 computes the first-order jackknife estimator
// D̂ = c + f₁·(n−1)/n, another classical baseline.
func Jackknife1(c int64, f Freq, n int64) float64 {
	if n <= 0 {
		return float64(c)
	}
	return float64(c) + float64(f.Singletons())*float64(n-1)/float64(n)
}

// Jackknife2 computes the second-order jackknife estimator
// D̂ = c + f₁·(2n−3)/n − f₂·(n−2)²/(n(n−1)).
func Jackknife2(c int64, f Freq, n int64) float64 {
	if n <= 1 {
		return Jackknife1(c, f, n)
	}
	fn := float64(n)
	return float64(c) +
		float64(f.Singletons())*(2*fn-3)/fn -
		float64(f.Doubletons())*(fn-2)*(fn-2)/(fn*(fn-1))
}

// ACERareCutoff is the conventional rare-species threshold of the ACE
// estimator: species observed at most this many times form the rare group
// whose coverage is estimated.
const ACERareCutoff = 10

// ACE computes the abundance-based coverage estimator (Chao & Lee 1992,
// estimator 2), another member of the coverage family included as an
// ablation baseline:
//
//	D̂ = c_abund + c_rare/Ĉ_rare + (f₁/Ĉ_rare)·γ̂²_rare
//
// where the rare group holds species seen ≤ ACERareCutoff times. Falls back
// to Chao84-style behaviour when the rare group carries no mass.
func ACE(f Freq) float64 {
	var cRare, cAbund, nRare, pairRare int64
	for j := 1; j < len(f); j++ {
		if f[j] == 0 {
			continue
		}
		if j <= ACERareCutoff {
			cRare += f[j]
			nRare += int64(j) * f[j]
			pairRare += int64(j) * int64(j-1) * f[j]
		} else {
			cAbund += f[j]
		}
	}
	if cRare == 0 {
		return float64(cAbund)
	}
	cov := Coverage(f.Singletons(), nRare)
	if cov == 0 {
		// All rare species are singletons; degrade to the Chao84 lower
		// bound, which stays finite.
		return float64(cAbund) + Chao84(cRare, f)
	}
	var gamma float64
	if nRare > 1 {
		gamma = float64(cRare) / cov * float64(pairRare) / (float64(nRare) * float64(nRare-1))
		gamma -= 1
		if gamma < 0 || math.IsNaN(gamma) {
			gamma = 0
		}
	}
	return float64(cAbund) + float64(cRare)/cov + float64(f.Singletons())/cov*gamma
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
