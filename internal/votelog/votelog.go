// Package votelog reads and writes worker-vote logs, the interchange format
// between the CLI tools: cmd/dqm-gen emits logs from simulated crowds and
// cmd/dqm estimates from them (or from logs of a real crowd deployment).
//
// Two encodings are supported:
//
//   - CSV with header "task,item,worker,label"; label is "dirty"/"clean"
//     (or "1"/"0").
//   - JSONL with one {"task":…,"item":…,"worker":…,"dirty":…} object per
//     line.
//
// Entries must be grouped by task id in file order; the task id marks the
// task boundaries the SWITCH trend detector needs.
package votelog

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"dqm/internal/crowd"
	"dqm/internal/votes"
)

// Entry is one logged vote.
type Entry struct {
	Task   int  `json:"task"`
	Item   int  `json:"item"`
	Worker int  `json:"worker"`
	Dirty  bool `json:"dirty"`
}

// FromTasks flattens simulated crowd tasks into log entries with sequential
// task ids.
func FromTasks(tasks []crowd.Task) []Entry {
	var out []Entry
	for ti, t := range tasks {
		for i, item := range t.Items {
			out = append(out, Entry{
				Task:   ti,
				Item:   item,
				Worker: t.Worker,
				Dirty:  t.Labels[i] == votes.Dirty,
			})
		}
	}
	return out
}

// Replay feeds entries into vote and boundary callbacks, calling endTask at
// every task-id change and after the final entry. Either callback may be
// nil.
func Replay(entries []Entry, vote func(Entry), endTask func()) {
	for i, e := range entries {
		if i > 0 && entries[i-1].Task != e.Task && endTask != nil {
			endTask()
		}
		if vote != nil {
			vote(e)
		}
	}
	if len(entries) > 0 && endTask != nil {
		endTask()
	}
}

// MaxItem returns the largest item id in the log, or -1 for an empty log.
func MaxItem(entries []Entry) int {
	maxI := -1
	for _, e := range entries {
		if e.Item > maxI {
			maxI = e.Item
		}
	}
	return maxI
}

// WriteCSV encodes entries as CSV with a header row.
func WriteCSV(w io.Writer, entries []Entry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "item", "worker", "label"}); err != nil {
		return err
	}
	for _, e := range entries {
		label := "clean"
		if e.Dirty {
			label = "dirty"
		}
		rec := []string{
			strconv.Itoa(e.Task), strconv.Itoa(e.Item), strconv.Itoa(e.Worker), label,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a CSV vote log. A header row is detected and skipped.
func ReadCSV(r io.Reader) ([]Entry, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var out []Entry
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("votelog: %w", err)
		}
		line++
		if line == 1 && rec[0] == "task" {
			continue
		}
		e, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("votelog: line %d: %w", line, err)
		}
		out = append(out, e)
	}
}

func parseCSVRecord(rec []string) (Entry, error) {
	var e Entry
	var err error
	if e.Task, err = strconv.Atoi(rec[0]); err != nil {
		return e, fmt.Errorf("bad task id %q", rec[0])
	}
	if e.Item, err = strconv.Atoi(rec[1]); err != nil {
		return e, fmt.Errorf("bad item id %q", rec[1])
	}
	if e.Worker, err = strconv.Atoi(rec[2]); err != nil {
		return e, fmt.Errorf("bad worker id %q", rec[2])
	}
	switch rec[3] {
	case "dirty", "1":
		e.Dirty = true
	case "clean", "0":
		e.Dirty = false
	default:
		return e, fmt.Errorf("bad label %q (want dirty/clean/1/0)", rec[3])
	}
	if e.Item < 0 {
		return e, fmt.Errorf("negative item id %d", e.Item)
	}
	return e, nil
}

// WriteJSONL encodes entries as one JSON object per line.
func WriteJSONL(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL vote log, skipping blank lines.
func ReadJSONL(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Entry
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("votelog: line %d: %w", line, err)
		}
		if e.Item < 0 {
			return nil, fmt.Errorf("votelog: line %d: negative item id %d", line, e.Item)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("votelog: %w", err)
	}
	return out, nil
}
