package votelog

import (
	"bytes"
	"reflect"
	"testing"
)

// splitDecodeAll runs SplitBinaryTasks and decodes every block's raw bytes
// back into Entry values, reproducing the stream the Entry decoder would have
// produced — the equivalence the columnar fast path promises.
func splitDecodeAll(t *testing.T, data []byte) []Entry {
	t.Helper()
	blocks, err := SplitBinaryTasks(data)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	var cols VoteColumns
	var out []Entry
	for _, b := range blocks {
		if err := cols.Decode(b.Raw); err != nil {
			t.Fatalf("decode block task %d: %v", b.Task, err)
		}
		if cols.Len() != b.Votes {
			t.Fatalf("block task %d: split counted %d votes, decode found %d", b.Task, b.Votes, cols.Len())
		}
		for i := 0; i < cols.Len(); i++ {
			out = append(out, Entry{
				Task:   int(b.Task),
				Item:   int(cols.Item[i]),
				Worker: int(cols.Worker[i]),
				Dirty:  cols.Dirty[i],
			})
		}
	}
	return out
}

// TestSplitBinaryTasksMatchesEntryDecoder: the zero-copy split plus columnar
// decode must reconstruct exactly what ReadBinary yields for any well-formed
// log — same votes, same task assignment, same order.
func TestSplitBinaryTasksMatchesEntryDecoder(t *testing.T) {
	for _, entries := range [][]Entry{
		{{Task: 0, Item: 1, Worker: 2, Dirty: true}},
		{{Task: 9, Item: 0, Worker: -3, Dirty: false}}, // nonzero first task
		genEntries(11, 400),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, entries); err != nil {
			t.Fatal(err)
		}
		got := splitDecodeAll(t, buf.Bytes())
		if !reflect.DeepEqual(got, entries) {
			t.Fatalf("columnar path diverged from Entry decoder: got %d entries, want %d", len(got), len(entries))
		}
	}
}

func TestSplitBinaryTasksEmptyAndErrors(t *testing.T) {
	// Bare magic: structurally valid, zero blocks.
	blocks, err := SplitBinaryTasks(BinaryMagic())
	if err != nil || len(blocks) != 0 {
		t.Fatalf("bare magic: blocks=%v err=%v", blocks, err)
	}
	for name, data := range map[string][]byte{
		"empty":            nil,
		"short magic":      []byte("DQM"),
		"wrong magic":      []byte("DQMX\x01"),
		"wrong version":    []byte("DQMV\x02"),
		"unknown opcode":   append(BinaryMagic(), 0xEE),
		"truncated vote":   append(BinaryMagic(), binOpVote),
		"truncated worker": AppendBinaryVote(BinaryMagic(), 3, 1, true)[:6],
		"huge item": append(BinaryMagic(),
			binOpVote, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00),
	} {
		if _, err := SplitBinaryTasks(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The same malformed vote bodies must also fail the columnar decoder.
	for name, raw := range map[string][]byte{
		"bad opcode":     {0xEE},
		"truncated item": {binOpVote},
		"truncated worker": AppendBinaryVote(nil, 3, 1, true)[:len(
			AppendBinaryVote(nil, 3, 1, true))-1],
	} {
		var cols VoteColumns
		if err := cols.Decode(raw); err == nil {
			t.Errorf("Decode %s: accepted", name)
		}
	}
}

// TestSplitBinaryTasksRedundantTaskRecord: a same-task 'T' record must seal
// the current run (so its bytes never land inside a block's Raw) without
// creating a spurious task boundary.
func TestSplitBinaryTasksRedundantTaskRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []Entry{{Task: 3, Item: 1, Worker: 0, Dirty: true}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Append a redundant delta-0 'T' and one more vote for the same task.
	data = append(data, binOpTask, 0x00)
	data = AppendBinaryVote(data, 2, 1, false)
	blocks, err := SplitBinaryTasks(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || blocks[0].Task != 3 || blocks[1].Task != 3 {
		t.Fatalf("blocks = %+v, want two task-3 blocks", blocks)
	}
	for i, b := range blocks {
		var cols VoteColumns
		if err := cols.Decode(b.Raw); err != nil {
			t.Fatalf("block %d raw contains non-vote bytes: %v", i, err)
		}
		if cols.Len() != 1 || b.Votes != 1 {
			t.Fatalf("block %d: votes=%d len=%d, want 1", i, b.Votes, cols.Len())
		}
	}
}

// TestVoteColumnsDecodeReusesBacking: a second Decode into the same
// VoteColumns must not allocate fresh columns when capacity suffices.
func TestVoteColumnsDecodeReusesBacking(t *testing.T) {
	big := AppendBinaryVote(AppendBinaryVote(nil, 1, 1, true), 2, 2, false)
	small := AppendBinaryVote(nil, 3, 3, true)
	var cols VoteColumns
	if err := cols.Decode(big); err != nil {
		t.Fatal(err)
	}
	p := &cols.Item[0]
	if err := cols.Decode(small); err != nil {
		t.Fatal(err)
	}
	if cols.Len() != 1 || &cols.Item[0] != p {
		t.Fatal("Decode reallocated columns despite spare capacity")
	}
	if cols.Item[0] != 3 || cols.Worker[0] != 3 || !cols.Dirty[0] {
		t.Fatalf("reused decode wrong: %+v", cols)
	}
}

// FuzzColumnarSplit: arbitrary bytes must never panic the splitter or the
// columnar decoder, anything accepted must agree with the Entry decoder, and
// every accepted block's Raw must itself decode with the advertised count.
func FuzzColumnarSplit(f *testing.F) {
	f.Add([]byte{})
	f.Add(BinaryMagic())
	var seed bytes.Buffer
	_ = WriteBinary(&seed, genEntries(5, 40))
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()-1])
	// Redundant same-task 'T' mid-run.
	withT := append(append([]byte{}, seed.Bytes()...), binOpTask, 0x00)
	f.Add(AppendBinaryVote(withT, 7, -1, true))
	// Varint edge: maximal in-range item key and worker.
	f.Add(AppendBinaryVote(BinaryMagic(), 1<<31-1, -1<<31, true))
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, err := SplitBinaryTasks(data)
		if err != nil {
			// Structural rejection must agree with the Entry decoder.
			if _, err2 := ReadBinary(bytes.NewReader(data)); err2 == nil {
				t.Fatalf("split rejected (%v) what ReadBinary accepts", err)
			}
			return
		}
		entries, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("split accepted what ReadBinary rejects: %v", err)
		}
		var cols VoteColumns
		n := 0
		for _, b := range blocks {
			if err := cols.Decode(b.Raw); err != nil {
				t.Fatalf("accepted block failed columnar decode: %v", err)
			}
			if cols.Len() != b.Votes {
				t.Fatalf("block advertises %d votes, decodes %d", b.Votes, cols.Len())
			}
			for i := 0; i < cols.Len(); i++ {
				e := entries[n]
				if e.Task != int(b.Task) || e.Item != int(cols.Item[i]) ||
					e.Worker != int(cols.Worker[i]) || e.Dirty != cols.Dirty[i] {
					t.Fatalf("vote %d: columnar %v/%d/%d/%v, entry %+v",
						n, b.Task, cols.Item[i], cols.Worker[i], cols.Dirty[i], e)
				}
				n++
			}
		}
		if n != len(entries) {
			t.Fatalf("columnar path yields %d votes, Entry path %d", n, len(entries))
		}
	})
}
