package votelog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"dqm/internal/crowd"
	"dqm/internal/votes"
)

func sampleEntries() []Entry {
	return []Entry{
		{Task: 0, Item: 3, Worker: 1, Dirty: true},
		{Task: 0, Item: 5, Worker: 1, Dirty: false},
		{Task: 1, Item: 3, Worker: 2, Dirty: false},
		{Task: 2, Item: 7, Worker: 3, Dirty: true},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleEntries()
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("entry %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleEntries()
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d entries", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("entry %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestReadCSVNumericLabels(t *testing.T) {
	src := "task,item,worker,label\n0,1,2,1\n0,3,2,0\n"
	out, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Dirty || out[1].Dirty {
		t.Fatalf("numeric labels parsed wrong: %v", out)
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	src := "0,1,2,dirty\n"
	out, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Dirty {
		t.Fatalf("headerless parse = %v", out)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad label":     "0,1,2,maybe\n",
		"bad task":      "x,1,2,dirty\n",
		"bad item":      "0,x,2,dirty\n",
		"bad worker":    "0,1,x,dirty\n",
		"negative item": "0,-1,2,dirty\n",
		"short row":     "0,1,2\n",
	}
	for name, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"task":0,"item":-2,"worker":0,"dirty":true}` + "\n")); err == nil {
		t.Fatal("negative item accepted")
	}
	out, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(out) != 0 {
		t.Fatalf("blank lines: %v, %v", out, err)
	}
}

func TestReplayBoundaries(t *testing.T) {
	var items []int
	taskEnds := 0
	Replay(sampleEntries(),
		func(e Entry) { items = append(items, e.Item) },
		func() { taskEnds++ })
	if len(items) != 4 {
		t.Fatalf("replayed %d votes", len(items))
	}
	// Three tasks in the sample → three boundaries (incl. the final one).
	if taskEnds != 3 {
		t.Fatalf("task boundaries = %d, want 3", taskEnds)
	}
	// Nil callbacks are tolerated.
	Replay(sampleEntries(), nil, nil)
	// Empty input produces no callbacks.
	calls := 0
	Replay(nil, func(Entry) { calls++ }, func() { calls++ })
	if calls != 0 {
		t.Fatalf("empty replay made %d calls", calls)
	}
}

func TestMaxItem(t *testing.T) {
	if got := MaxItem(sampleEntries()); got != 7 {
		t.Fatalf("MaxItem = %d", got)
	}
	if got := MaxItem(nil); got != -1 {
		t.Fatalf("MaxItem(nil) = %d", got)
	}
}

func TestFromTasks(t *testing.T) {
	tasks := []crowd.Task{
		{Worker: 1, Items: []int{2, 3}, Labels: []votes.Label{votes.Dirty, votes.Clean}},
		{Worker: 2, Items: []int{4}, Labels: []votes.Label{votes.Dirty}},
	}
	entries := FromTasks(tasks)
	if len(entries) != 3 {
		t.Fatalf("entries = %v", entries)
	}
	if entries[0] != (Entry{Task: 0, Item: 2, Worker: 1, Dirty: true}) {
		t.Fatalf("entry 0 = %v", entries[0])
	}
	if entries[2] != (Entry{Task: 1, Item: 4, Worker: 2, Dirty: true}) {
		t.Fatalf("entry 2 = %v", entries[2])
	}
}

func TestCSVHeaderOnly(t *testing.T) {
	out, err := ReadCSV(strings.NewReader("task,item,worker,label\n"))
	if err != nil || len(out) != 0 {
		t.Fatalf("header-only: %v, %v", out, err)
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	// Arbitrary well-formed entry lists survive a CSV round trip.
	prop := func(raw []uint32) bool {
		entries := make([]Entry, len(raw))
		task := 0
		for i, r := range raw {
			if r%5 == 0 {
				task++
			}
			entries[i] = Entry{
				Task:   task,
				Item:   int(r % 1000),
				Worker: int(r % 37),
				Dirty:  r%2 == 0,
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, entries); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(entries) {
			return false
		}
		for i := range entries {
			if back[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
