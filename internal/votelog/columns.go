package votelog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Columnar access to the binary (DQMV) vote-log encoding: the ingest hot path
// hands raw 'V'-record bytes from the wire straight to the write-ahead
// journal and decodes them once into parallel item/worker/dirty columns for
// matrix application — no per-vote materialization of Entry structs, no
// per-vote re-encode into a second wire format.

// VoteColumns is one decoded columnar vote batch: parallel slices, one row
// per vote. The backing arrays are reused across Decode calls, so a
// long-lived ingest path decodes batches without allocating after warmup.
type VoteColumns struct {
	Item   []int32
	Worker []int32
	Dirty  []bool
}

// Len returns the number of votes in the batch.
func (c *VoteColumns) Len() int { return len(c.Item) }

// Reset empties the columns, keeping capacity.
func (c *VoteColumns) Reset() {
	c.Item = c.Item[:0]
	c.Worker = c.Worker[:0]
	c.Dirty = c.Dirty[:0]
}

// Decode resets the columns and fills them from raw 'V' records (the DQMV
// vote encoding, without the file magic or 'T' task records — exactly the
// per-task byte ranges SplitBinaryTasks returns). It validates the encoding;
// range-checking items against a population is the caller's job, because only
// the caller knows N.
func (c *VoteColumns) Decode(raw []byte) error {
	c.Reset()
	return c.DecodeAppend(raw)
}

// DecodeAppend is Decode without the reset: decoded votes append to whatever
// the columns already hold. WAL replay uses it to accumulate consecutive vote
// records (plain and columnar alike) into one task-sized batch before
// applying them — the batching that makes recovery look like columnar ingest
// rather than a stream of single-vote appends.
func (c *VoteColumns) DecodeAppend(raw []byte) error {
	for len(raw) > 0 {
		if raw[0] != binOpVote {
			return fmt.Errorf("votelog: columnar batch: vote %d: unknown opcode 0x%02x", len(c.Item), raw[0])
		}
		raw = raw[1:]
		key, n := binary.Uvarint(raw)
		if n <= 0 || key>>1 > math.MaxInt32 {
			return fmt.Errorf("votelog: columnar batch: vote %d: bad item", len(c.Item))
		}
		raw = raw[n:]
		w, n := binary.Uvarint(raw)
		if n <= 0 {
			return fmt.Errorf("votelog: columnar batch: vote %d: bad worker", len(c.Item))
		}
		raw = raw[n:]
		worker := unzigzag(w)
		if worker < math.MinInt32 || worker > math.MaxInt32 {
			return fmt.Errorf("votelog: columnar batch: vote %d: worker id %d out of range", len(c.Item), worker)
		}
		c.Item = append(c.Item, int32(key>>1))
		c.Worker = append(c.Worker, int32(worker))
		c.Dirty = append(c.Dirty, key&1 == 1)
	}
	return nil
}

// Append appends one already-decoded vote row — the path single opVote WAL
// records take into a replay batch, where there are no wire bytes to decode.
func (c *VoteColumns) Append(item, worker int32, dirty bool) {
	c.Item = append(c.Item, item)
	c.Worker = append(c.Worker, worker)
	c.Dirty = append(c.Dirty, dirty)
}

// AppendBinaryVote appends one raw 'V' record — the building block for
// constructing columnar batches (tests, load generators) without an []Entry
// detour.
func AppendBinaryVote(buf []byte, item, worker int32, dirty bool) []byte {
	buf = append(buf, binOpVote)
	key := uint64(uint32(item)) << 1
	if dirty {
		key |= 1
	}
	buf = binary.AppendUvarint(buf, key)
	return binary.AppendUvarint(buf, zigzag(int64(worker)))
}

// TaskBlock is one task's slice of a binary vote log: the task id and the raw
// 'V'-record bytes of its votes, aliasing the input (zero-copy). A task ends
// where the next block carries a different task id (or at the end of the
// stream) — the same boundary rule as Replay, so consumers that map blocks to
// task boundaries reproduce exactly the estimates the Entry path yields.
type TaskBlock struct {
	Task int32
	Raw  []byte
	// Votes is the number of 'V' records in Raw (counted during the split,
	// so batch-size limits need no second decode pass).
	Votes int
}

// BinaryMagic returns the 5-byte header of the binary vote-log format
// (callers framing or sniffing DQMV request bodies).
func BinaryMagic() []byte { return append([]byte(nil), binaryMagic...) }

// ContentTypeDQMV is the HTTP media type under which the binary vote-log
// encoding travels (dqm-serve's votes endpoint, dqm-loadgen's binary driver).
const ContentTypeDQMV = "application/x-dqmv"

// SplitBinaryTasks splits a full binary vote log (magic header included) into
// per-task blocks without decoding votes into structs: each block's Raw is a
// subslice of data holding only 'V' records, ready to be journaled verbatim
// as one columnar WAL record. The stream is validated structurally (header,
// opcodes, varints, int32 bounds); item-vs-population range checks remain the
// caller's.
func SplitBinaryTasks(data []byte) ([]TaskBlock, error) {
	if len(data) < len(binaryMagic) || !bytes.Equal(data[:len(binaryMagic)], binaryMagic) {
		return nil, fmt.Errorf("votelog: bad binary header (want magic %q version %d)", binaryMagic[:4], binaryMagic[4])
	}
	p := data[len(binaryMagic):]
	var blocks []TaskBlock
	task := int64(0)
	voteStart := -1 // offset in p where the current run of 'V' records began
	runVotes := 0   // 'V' records in the current run
	flush := func(end int) {
		if voteStart >= 0 {
			blocks = append(blocks, TaskBlock{Task: int32(task), Raw: p[voteStart:end], Votes: runVotes})
			voteStart = -1
			runVotes = 0
		}
	}
	off := 0
	nvotes := 0
	for off < len(p) {
		switch p[off] {
		case binOpTask:
			d, n := binary.Uvarint(p[off+1:])
			if n <= 0 {
				return nil, fmt.Errorf("votelog: vote %d: bad task delta", nvotes)
			}
			t := task + unzigzag(d)
			if t < math.MinInt32 || t > math.MaxInt32 {
				return nil, fmt.Errorf("votelog: vote %d: task id %d out of range", nvotes, t)
			}
			if t != task {
				flush(off)
				task = t
			} else if voteStart >= 0 {
				// A redundant same-task record would otherwise embed its own
				// bytes in the run; seal the run here (same task id, so the
				// block boundary does not become a task boundary).
				flush(off)
			}
			off += 1 + n
		case binOpVote:
			key, n1 := binary.Uvarint(p[off+1:])
			if n1 <= 0 || key>>1 > math.MaxInt32 {
				return nil, fmt.Errorf("votelog: vote %d: bad item", nvotes)
			}
			w, n2 := binary.Uvarint(p[off+1+n1:])
			if n2 <= 0 {
				return nil, fmt.Errorf("votelog: vote %d: bad worker", nvotes)
			}
			if wk := unzigzag(w); wk < math.MinInt32 || wk > math.MaxInt32 {
				return nil, fmt.Errorf("votelog: vote %d: worker id %d out of range", nvotes, wk)
			}
			if voteStart < 0 {
				voteStart = off
			}
			off += 1 + n1 + n2
			nvotes++
			runVotes++
		default:
			return nil, fmt.Errorf("votelog: vote %d: unknown opcode 0x%02x", nvotes, p[off])
		}
	}
	flush(len(p))
	return blocks, nil
}
