package votelog

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func genEntries(seed int64, n int) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	task := 0
	for i := range out {
		if rng.Intn(4) == 0 {
			task++
		}
		out[i] = Entry{
			Task:   task,
			Item:   rng.Intn(10000),
			Worker: rng.Intn(50) - 5, // include negative worker ids
			Dirty:  rng.Intn(2) == 0,
		}
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, entries := range [][]Entry{
		nil,
		{{Task: 7, Item: 0, Worker: 0, Dirty: true}}, // nonzero initial task id
		genEntries(1, 500),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, entries); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty log decoded to %d entries", len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, entries) {
			t.Fatalf("round trip mismatch: got %d entries, want %d", len(got), len(entries))
		}
	}
}

func TestBinaryIsCompact(t *testing.T) {
	entries := genEntries(2, 2000)
	var csvBuf, binBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, entries); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&binBuf, entries); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len()*3 > csvBuf.Len() {
		t.Fatalf("binary log %dB not at least 3x smaller than CSV %dB", binBuf.Len(), csvBuf.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{
		{},
		[]byte("task,item,worker,label\n"),
		append(append([]byte{}, binaryMagic...), 0x00),
		append(append([]byte{}, binaryMagic...), binOpVote), // truncated vote
	} {
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Fatalf("garbage %v decoded without error", b)
		}
	}
}

func TestReadWriteDispatchAndDetect(t *testing.T) {
	entries := genEntries(3, 50)
	for _, format := range []string{"csv", "jsonl", "binary"} {
		var buf bytes.Buffer
		if err := Write(&buf, format, entries); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf, format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !reflect.DeepEqual(got, entries) {
			t.Fatalf("%s: round trip mismatch", format)
		}
	}
	if _, err := Read(bytes.NewReader(nil), "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
	for path, want := range map[string]string{
		"votes.bin": "binary", "x.dqmb": "binary", "a.jsonl": "jsonl",
		"b.ndjson": "jsonl", "votes.csv": "csv", "": "csv",
	} {
		if got := DetectFormat(path); got != want {
			t.Fatalf("DetectFormat(%q) = %q, want %q", path, got, want)
		}
	}
}

// FuzzBinaryVotelog: arbitrary bytes must never panic the decoder, and
// anything it accepts must re-encode and re-decode to the same entries.
func FuzzBinaryVotelog(f *testing.F) {
	f.Add([]byte{})
	var seed bytes.Buffer
	_ = WriteBinary(&seed, genEntries(4, 30))
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, entries); err != nil {
			t.Fatalf("re-encode of accepted log failed: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(entries) != len(again) || (len(entries) > 0 && !reflect.DeepEqual(entries, again)) {
			t.Fatal("binary round trip not stable")
		}
	})
}

func TestBinaryWriterRejectsOutOfRangeIDs(t *testing.T) {
	if strconv.IntSize == 32 {
		t.Skip("int32 platform cannot construct out-of-range ids")
	}
	big := int(math.MaxInt32) + 1
	for _, entries := range [][]Entry{
		{{Task: big, Item: 1, Worker: 0}},
		{{Task: 0, Item: 1, Worker: -big - 1}},
	} {
		if err := WriteBinary(io.Discard, entries); err == nil {
			t.Fatalf("WriteBinary accepted out-of-range ids %+v", entries[0])
		}
	}
}

// TestWriteBinaryRejectsOutOfRangeItem: items beyond int32 must fail at
// write time — beyond MaxInt64/2 the item<<1 key silently overflows, and
// anything above MaxInt32 produces a file a 32-bit reader refuses.
func TestWriteBinaryRejectsOutOfRangeItem(t *testing.T) {
	if math.MaxInt == math.MaxInt32 {
		t.Skip("items cannot exceed int32 on a 32-bit platform")
	}
	big := int(int64(math.MaxInt32) + 1)
	err := WriteBinary(io.Discard, []Entry{{Task: 1, Item: big, Worker: 1}})
	if err == nil || !strings.Contains(err.Error(), "item id") {
		t.Fatalf("WriteBinary(item=%d) err = %v, want item-range error", big, err)
	}
	if err := WriteBinary(io.Discard, []Entry{{Task: 1, Item: math.MaxInt32, Worker: 1}}); err != nil {
		t.Fatalf("WriteBinary(item=MaxInt32) err = %v, want nil", err)
	}
}
