package votelog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
)

// Binary vote-log encoding: the compact interchange format for large logs
// (a few bytes per vote instead of ~20 for CSV/JSONL), mirroring the
// varint record scheme of the engine's write-ahead journal (internal/wal).
//
// Layout: 5-byte header (magic "DQMV", version 1), then records:
//
//	0x54 ('T')  zigzag-varint(task - prevTask): task id of following votes
//	0x56 ('V')  uvarint(item<<1 | dirty), zigzag-varint(worker)
//
// A task record is emitted before the first vote and at every task-id
// change; votes inherit the current task id. The stream carries exactly the
// Entry fields, so CSV ⇄ JSONL ⇄ binary conversions are lossless; task,
// item and worker ids are bounded to int32 for portability, and the writer
// rejects anything larger instead of emitting a file its own reader would
// refuse.
var binaryMagic = []byte{'D', 'Q', 'M', 'V', 1}

const (
	binOpTask byte = 'T'
	binOpVote byte = 'V'
)

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteBinary encodes entries in the binary vote-log format.
func WriteBinary(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	task := 0
	first := true
	for _, e := range entries {
		if e.Item < 0 {
			return fmt.Errorf("votelog: negative item id %d", e.Item)
		}
		// The reader bounds task, item and worker ids to int32 (so logs stay
		// portable to 32-bit platforms); enforce the same bounds here rather
		// than write a file our own reader refuses — or, for items beyond
		// MaxInt64/2, silently corrupt the record when item<<1 overflows.
		if int64(e.Item) > math.MaxInt32 {
			return fmt.Errorf("votelog: item id %d outside the binary format's int32 range", e.Item)
		}
		if e.Task < math.MinInt32 || e.Task > math.MaxInt32 {
			return fmt.Errorf("votelog: task id %d outside the binary format's int32 range", e.Task)
		}
		if e.Worker < math.MinInt32 || e.Worker > math.MaxInt32 {
			return fmt.Errorf("votelog: worker id %d outside the binary format's int32 range", e.Worker)
		}
		if first || e.Task != task {
			bw.WriteByte(binOpTask)
			n := binary.PutUvarint(buf[:], zigzag(int64(e.Task)-int64(task)))
			bw.Write(buf[:n])
			task = e.Task
			first = false
		}
		bw.WriteByte(binOpVote)
		key := uint64(e.Item) << 1
		if e.Dirty {
			key |= 1
		}
		n := binary.PutUvarint(buf[:], key)
		n += binary.PutUvarint(buf[n:], zigzag(int64(e.Worker)))
		bw.Write(buf[:n])
	}
	return bw.Flush()
}

// ReadBinary decodes a binary vote log.
func ReadBinary(r io.Reader) ([]Entry, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, hdr); err != nil || string(hdr) != string(binaryMagic) {
		return nil, fmt.Errorf("votelog: bad binary header (want magic %q version %d)", binaryMagic[:4], binaryMagic[4])
	}
	var out []Entry
	task := 0
	for {
		op, err := br.ReadByte()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("votelog: %w", err)
		}
		switch op {
		case binOpTask:
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("votelog: record %d: bad task delta", len(out))
			}
			t := int64(task) + unzigzag(d)
			if t < math.MinInt32 || t > math.MaxInt32 {
				return nil, fmt.Errorf("votelog: record %d: task id %d out of range", len(out), t)
			}
			task = int(t)
		case binOpVote:
			key, err := binary.ReadUvarint(br)
			if err != nil || key>>1 > math.MaxInt32 {
				return nil, fmt.Errorf("votelog: record %d: bad item", len(out))
			}
			wv, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("votelog: record %d: bad worker", len(out))
			}
			worker := unzigzag(wv)
			if worker < math.MinInt32 || worker > math.MaxInt32 {
				return nil, fmt.Errorf("votelog: record %d: worker id %d out of range", len(out), worker)
			}
			out = append(out, Entry{
				Task:   task,
				Item:   int(key >> 1),
				Worker: int(worker),
				Dirty:  key&1 == 1,
			})
		default:
			return nil, fmt.Errorf("votelog: record %d: unknown opcode 0x%02x", len(out), op)
		}
	}
}

// DetectFormat infers a log format from a file path extension: ".bin" and
// ".dqmb" mean binary, ".jsonl"/".ndjson" mean JSONL, anything else CSV.
func DetectFormat(path string) string {
	switch {
	case strings.HasSuffix(path, ".bin"), strings.HasSuffix(path, ".dqmb"):
		return "binary"
	case strings.HasSuffix(path, ".jsonl"), strings.HasSuffix(path, ".ndjson"):
		return "jsonl"
	default:
		return "csv"
	}
}

// Read decodes a vote log in the named format ("csv", "jsonl" or "binary").
func Read(r io.Reader, format string) ([]Entry, error) {
	switch format {
	case "csv":
		return ReadCSV(r)
	case "jsonl":
		return ReadJSONL(r)
	case "binary":
		return ReadBinary(r)
	default:
		return nil, fmt.Errorf("votelog: unknown format %q (want csv, jsonl or binary)", format)
	}
}

// Write encodes a vote log in the named format ("csv", "jsonl" or "binary").
func Write(w io.Writer, format string, entries []Entry) error {
	switch format {
	case "csv":
		return WriteCSV(w, entries)
	case "jsonl":
		return WriteJSONL(w, entries)
	case "binary":
		return WriteBinary(w, entries)
	default:
		return fmt.Errorf("votelog: unknown format %q (want csv, jsonl or binary)", format)
	}
}
