package votes

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Stripes is a sharded staging area for concurrent bulk ingest into one
// matrix: writers scatter vote batches across independently locked stripes
// (round-robin, one atomic increment per batch), so N goroutines feeding the
// same session stop serializing on its mutex; a single reader later drains
// every stripe and folds the staged votes into the real matrix. The drain
// order is stripe order, not arrival order — callers stage only votes whose
// relative order does not matter (votes within one task; every aggregate the
// estimators consume is intra-task order-independent).
type Stripes struct {
	next    atomic.Uint64 // round-robin cursor
	pending atomic.Int64  // staged votes not yet drained
	stripes []stripe
}

// stripe is one independently locked staging buffer, padded so neighboring
// stripes do not share a cache line under concurrent writers.
type stripe struct {
	mu  sync.Mutex
	buf []Vote
	_   [88]byte
}

// NewStripes builds a staging area with n stripes; n <= 0 selects
// GOMAXPROCS, the useful ceiling on writer concurrency.
func NewStripes(n int) *Stripes {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Stripes{stripes: make([]stripe, n)}
}

// PutBatch stages one batch. The whole batch lands in a single stripe, so a
// drain never interleaves two batches' votes — only reorders whole batches.
func (s *Stripes) PutBatch(vs []Vote) {
	if len(vs) == 0 {
		return
	}
	st := &s.stripes[s.next.Add(1)%uint64(len(s.stripes))]
	st.mu.Lock()
	st.buf = append(st.buf, vs...)
	st.mu.Unlock()
	s.pending.Add(int64(len(vs)))
}

// Pending returns the number of staged votes not yet drained. It is exact at
// quiescence; mid-ingest it lags individual Put/Drain steps by design (one
// atomic, no lock).
func (s *Stripes) Pending() int64 {
	return s.pending.Load()
}

// Drain feeds every non-empty stripe's buffer to fn, in stripe order,
// clearing each buffer only after fn succeeds — a failed fn (journal error)
// leaves that stripe and all later ones staged, so no vote is dropped. The
// slice passed to fn aliases stripe storage and is invalid after fn returns.
func (s *Stripes) Drain(fn func([]Vote) error) error {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		if len(st.buf) > 0 {
			if err := fn(st.buf); err != nil {
				st.mu.Unlock()
				return err
			}
			s.pending.Add(-int64(len(st.buf)))
			st.buf = st.buf[:0]
		}
		st.mu.Unlock()
	}
	return nil
}
