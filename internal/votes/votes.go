// Package votes implements the worker-response matrix I of Problem 1: an
// N×K matrix with entries {1, 0, ∅} denoting dirty, clean and unseen. The
// matrix is ingested incrementally, one vote at a time, in task order; it
// maintains the aggregates every estimator in the paper consumes:
//
//   - n⁺_i, n⁻_i    per-item positive/negative vote counts
//   - c_nominal     #items marked dirty by at least one worker (§2.2.1)
//   - c_majority    #items whose strict majority is dirty (§2.2.2)
//   - n⁺            total positive votes (the n of the Chao92 error estimate)
//   - f-statistics  f_j = #items with exactly j positive votes (§3.2)
//
// The full per-item vote sequences are retained so that the switch machinery
// (package switchstat) and permutation replays can be driven from one source
// of truth.
package votes

import (
	"fmt"

	"dqm/internal/stats"
)

// Label is a single worker judgment about one item.
type Label uint8

const (
	// Clean is a vote that the item is not erroneous (matrix entry 0).
	Clean Label = iota
	// Dirty is a vote that the item is erroneous (matrix entry 1).
	Dirty
)

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case Clean:
		return "clean"
	case Dirty:
		return "dirty"
	default:
		return fmt.Sprintf("Label(%d)", uint8(l))
	}
}

// Vote is one observed matrix entry: worker w judged item i.
type Vote struct {
	Item   int
	Worker int
	Label  Label
}

// workerSet tracks the distinct workers seen as a growable dense bitset:
// worker IDs are small dense integers in every supported source (simulator
// pools number workers 0..K−1, vote logs use row-local counters), so a
// bitset replaces the map the hot path previously touched on every vote.
// IDs outside the dense range — negative, or so large the bitset would
// balloon (possible only in hand-written logs) — fall back to a lazily
// allocated map, so correctness never depends on the dense assumption.
type workerSet struct {
	bits   []uint64
	count  int
	sparse map[int]struct{}
}

// workerSetMaxDense bounds the bitset to 1 MiB (2²³ worker IDs); beyond
// that the sparse map is cheaper than the zero-filled words.
const workerSetMaxDense = 1 << 23

// add records worker w, returning without allocating when w was seen.
func (s *workerSet) add(w int) {
	if w < 0 || w >= workerSetMaxDense {
		if s.sparse == nil {
			s.sparse = make(map[int]struct{})
		}
		if _, ok := s.sparse[w]; !ok {
			s.sparse[w] = struct{}{}
			s.count++
		}
		return
	}
	word := w >> 6
	for word >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	if bit := uint64(1) << (w & 63); s.bits[word]&bit == 0 {
		s.bits[word] |= bit
		s.count++
	}
}

// len returns the number of distinct workers recorded.
func (s *workerSet) len() int { return s.count }

// reset clears the set, retaining the bitset's capacity.
func (s *workerSet) reset() {
	clear(s.bits)
	s.count = 0
	s.sparse = nil
}

// itemState is the per-row aggregate of the matrix.
type itemState struct {
	pos, neg int32
}

func (s itemState) total() int32 { return s.pos + s.neg }

// majorityDirty reports whether the strict majority of votes marks the item
// dirty: n⁺ − n/2 > 0 ⇔ n⁺ > n⁻ (ties are not a dirty majority).
func (s itemState) majorityDirty() bool { return s.pos > s.neg }

// Matrix is the incrementally built worker-response matrix.
//
// The zero value is not ready for use; construct with NewMatrix.
type Matrix struct {
	n     int
	items []itemState
	// history holds per-item vote sequences in arrival order.
	history [][]Vote
	// retainHistory can be disabled for long simulations that only need
	// aggregates (the switch estimator maintains its own streaming state).
	retainHistory bool

	workers   workerSet
	votes     int64
	posVotes  int64
	cNominal  int64
	cMajority int64
	// fpos tracks f_j over positive-vote counts incrementally, together with
	// its running aggregates (f₁, pair sum), so the Chao92 estimators read
	// their sufficient statistic in O(1) instead of walking the fingerprint.
	fpos stats.RunningFreq
}

// Option configures a Matrix.
type Option func(*Matrix)

// WithoutHistory disables retention of per-item vote sequences. Aggregates
// (counts, fingerprints, majority) remain exact.
func WithoutHistory() Option {
	return func(m *Matrix) { m.retainHistory = false }
}

// NewMatrix creates a matrix over n items, all initially unseen.
func NewMatrix(n int, opts ...Option) *Matrix {
	if n < 0 {
		panic(fmt.Sprintf("votes: negative item count %d", n))
	}
	m := &Matrix{
		n:             n,
		items:         make([]itemState, n),
		history:       make([][]Vote, n),
		retainHistory: true,
		fpos:          stats.NewRunningFreq(stats.Freq{0}),
	}
	for _, o := range opts {
		o(m)
	}
	if !m.retainHistory {
		m.history = nil
	}
	return m
}

// NumItems returns N.
func (m *Matrix) NumItems() int { return m.n }

// NumWorkers returns the number of distinct workers seen so far (K).
func (m *Matrix) NumWorkers() int { return m.workers.len() }

// TotalVotes returns the number of non-∅ entries ingested.
func (m *Matrix) TotalVotes() int64 { return m.votes }

// PositiveVotes returns n⁺ = Σ_i n⁺_i.
func (m *Matrix) PositiveVotes() int64 { return m.posVotes }

// Add ingests one vote. It panics on an out-of-range item, mirroring slice
// semantics: vote streams are produced by this repository's own simulators
// and loaders, which validate input at the boundary.
func (m *Matrix) Add(v Vote) {
	st := &m.items[v.Item]
	wasNominal := st.pos > 0
	wasMajority := st.majorityDirty()

	if v.Label == Dirty {
		// Maintain the positive-vote fingerprint: the item moves from class
		// n⁺ to class n⁺+1.
		if st.pos > 0 {
			m.fpos.Promote(int(st.pos))
		} else {
			m.fpos.Add(1, 1)
		}
		st.pos++
		m.posVotes++
		if !wasNominal {
			m.cNominal++
		}
	} else {
		st.neg++
	}
	m.votes++
	m.workers.add(v.Worker)

	if isMajority := st.majorityDirty(); isMajority != wasMajority {
		if isMajority {
			m.cMajority++
		} else {
			m.cMajority--
		}
	}
	if m.retainHistory {
		m.history[v.Item] = append(m.history[v.Item], v)
	}
}

// AddAll ingests votes in order.
func (m *Matrix) AddAll(vs []Vote) {
	for _, v := range vs {
		m.Add(v)
	}
}

// Pos returns n⁺_i.
func (m *Matrix) Pos(item int) int { return int(m.items[item].pos) }

// Neg returns n⁻_i.
func (m *Matrix) Neg(item int) int { return int(m.items[item].neg) }

// Seen returns the number of votes item i has received.
func (m *Matrix) Seen(item int) int { return int(m.items[item].total()) }

// MajorityDirty reports the current strict-majority consensus for item i.
func (m *Matrix) MajorityDirty(item int) bool { return m.items[item].majorityDirty() }

// Nominal returns c_nominal = Σ_i 1[n⁺_i > 0] (§2.2.1).
func (m *Matrix) Nominal() int64 { return m.cNominal }

// Majority returns c_majority = Σ_i 1[n⁺_i − n_i/2 > 0] (§2.2.2).
func (m *Matrix) Majority() int64 { return m.cMajority }

// DirtyFingerprint returns the f-statistics over positive votes: f_j is the
// number of items marked dirty by exactly j workers. The returned slice is a
// copy and safe to retain.
func (m *Matrix) DirtyFingerprint() stats.Freq { return m.fpos.Clone() }

// DirtyFingerprintView returns the same f-statistics without copying. The
// returned slice aliases internal storage: it must not be modified and is
// invalidated by the next Add or Reset. The estimator hot paths read it in
// place to keep per-checkpoint evaluation allocation-free.
func (m *Matrix) DirtyFingerprintView() stats.Freq { return m.fpos.View() }

// DirtyStats returns the Chao92 sufficient statistic of the positive-vote
// fingerprint — f₁ and Σ j(j−1)f_j — in O(1) from the running aggregates.
func (m *Matrix) DirtyStats() (f1, pairSum int64) {
	return m.fpos.Singletons(), m.fpos.PairSum()
}

// DirtyShifted returns the aggregate statistics of the positive-vote
// fingerprint shifted by s classes (the vChao92 device) in O(s).
func (m *Matrix) DirtyShifted(s int) stats.ShiftedStats { return m.fpos.Shifted(s) }

// History returns the vote sequence of item i in arrival order. The returned
// slice aliases internal storage and must not be modified. It returns nil
// when history retention is disabled.
func (m *Matrix) History(item int) []Vote {
	if !m.retainHistory {
		return nil
	}
	return m.history[item]
}

// MajorityVector materializes the current consensus vector V ∈ {0,1}^N of
// Problem 2 (true = dirty).
func (m *Matrix) MajorityVector() []bool {
	out := make([]bool, m.n)
	for i := range m.items {
		out[i] = m.items[i].majorityDirty()
	}
	return out
}

// Coverage returns the fraction of items with at least one vote.
func (m *Matrix) Coverage() float64 {
	if m.n == 0 {
		return 0
	}
	seen := 0
	for i := range m.items {
		if m.items[i].total() > 0 {
			seen++
		}
	}
	return float64(seen) / float64(m.n)
}

// Clone returns a deep, independent copy of the matrix. The clone shares no
// mutable state with the receiver, so session engines can snapshot a live
// matrix and keep ingesting into the original.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{
		n:             m.n,
		items:         append([]itemState(nil), m.items...),
		retainHistory: m.retainHistory,
		votes:         m.votes,
		posVotes:      m.posVotes,
		cNominal:      m.cNominal,
		cMajority:     m.cMajority,
		fpos:          m.fpos.CloneRunning(),
	}
	if m.retainHistory {
		out.history = make([][]Vote, len(m.history))
		for i, h := range m.history {
			if len(h) > 0 {
				out.history[i] = append([]Vote(nil), h...)
			}
		}
	}
	out.workers = m.workers.clone()
	return out
}

// clone returns an independent copy of the worker set.
func (s *workerSet) clone() workerSet {
	out := workerSet{
		bits:  append([]uint64(nil), s.bits...),
		count: s.count,
	}
	if s.sparse != nil {
		out.sparse = make(map[int]struct{}, len(s.sparse))
		for w := range s.sparse {
			out.sparse[w] = struct{}{}
		}
	}
	return out
}

// Reset clears the matrix back to all-unseen without reallocating.
func (m *Matrix) Reset() {
	for i := range m.items {
		m.items[i] = itemState{}
	}
	if m.retainHistory {
		for i := range m.history {
			m.history[i] = m.history[i][:0]
		}
	}
	m.workers.reset()
	m.votes, m.posVotes, m.cNominal, m.cMajority = 0, 0, 0, 0
	m.fpos.Reset()
}
