package votes

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dqm/internal/stats"
)

func TestLabelString(t *testing.T) {
	if Clean.String() != "clean" || Dirty.String() != "dirty" {
		t.Fatal("label strings wrong")
	}
	if Label(9).String() != "Label(9)" {
		t.Fatalf("unknown label string: %s", Label(9))
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	if m.NumItems() != 3 || m.TotalVotes() != 0 || m.Nominal() != 0 || m.Majority() != 0 {
		t.Fatal("fresh matrix not empty")
	}
	m.Add(Vote{Item: 0, Worker: 1, Label: Dirty})
	m.Add(Vote{Item: 0, Worker: 2, Label: Clean})
	m.Add(Vote{Item: 1, Worker: 1, Label: Clean})
	m.Add(Vote{Item: 2, Worker: 3, Label: Dirty})
	m.Add(Vote{Item: 2, Worker: 4, Label: Dirty})

	if got := m.TotalVotes(); got != 5 {
		t.Fatalf("TotalVotes = %d", got)
	}
	if got := m.PositiveVotes(); got != 3 {
		t.Fatalf("PositiveVotes = %d", got)
	}
	if got := m.NumWorkers(); got != 4 {
		t.Fatalf("NumWorkers = %d", got)
	}
	// Nominal: items 0 and 2 were marked dirty at least once.
	if got := m.Nominal(); got != 2 {
		t.Fatalf("Nominal = %d", got)
	}
	// Majority: item 0 is tied (not a dirty majority), item 2 is 2-0.
	if got := m.Majority(); got != 1 {
		t.Fatalf("Majority = %d", got)
	}
	if m.MajorityDirty(0) || m.MajorityDirty(1) || !m.MajorityDirty(2) {
		t.Fatal("per-item majority wrong")
	}
	if m.Pos(0) != 1 || m.Neg(0) != 1 || m.Seen(0) != 2 {
		t.Fatal("per-item counts wrong")
	}
}

func TestMatrixMajorityFlipsBothWays(t *testing.T) {
	m := NewMatrix(1)
	m.Add(Vote{Item: 0, Label: Dirty})
	if m.Majority() != 1 {
		t.Fatal("majority should be dirty after one dirty vote")
	}
	m.Add(Vote{Item: 0, Label: Clean})
	if m.Majority() != 0 {
		t.Fatal("tie is not a dirty majority")
	}
	m.Add(Vote{Item: 0, Label: Dirty})
	if m.Majority() != 1 {
		t.Fatal("majority should flip back to dirty")
	}
}

func TestDirtyFingerprint(t *testing.T) {
	m := NewMatrix(4)
	// Item 0: 1 dirty vote; item 1: 2; item 2: 0; item 3: 1 (plus cleans).
	m.AddAll([]Vote{
		{Item: 0, Label: Dirty},
		{Item: 1, Label: Dirty}, {Item: 1, Label: Dirty},
		{Item: 2, Label: Clean},
		{Item: 3, Label: Dirty}, {Item: 3, Label: Clean},
	})
	f := m.DirtyFingerprint()
	if f.F(1) != 2 || f.F(2) != 1 {
		t.Fatalf("fingerprint = %v", f)
	}
	// Clean votes contribute nothing.
	if f.Mass() != m.PositiveVotes() {
		t.Fatalf("fingerprint mass %d != positive votes %d", f.Mass(), m.PositiveVotes())
	}
	// Returned fingerprint is a copy.
	f.Add(1, 100)
	if m.DirtyFingerprint().F(1) != 2 {
		t.Fatal("DirtyFingerprint leaked internal state")
	}
}

// TestAggregatesOrderIndependent: nominal, majority, n⁺ and the fingerprint
// are functions of the final matrix, not the ingestion order.
func TestAggregatesOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	prop := func(seed uint64) bool {
		const n = 20
		var vs []Vote
		for i := 0; i < 60; i++ {
			vs = append(vs, Vote{
				Item:   rng.IntN(n),
				Worker: rng.IntN(7),
				Label:  Label(rng.IntN(2)),
			})
		}
		a, b := NewMatrix(n), NewMatrix(n)
		a.AddAll(vs)
		shuffled := append([]Vote(nil), vs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b.AddAll(shuffled)

		if a.Nominal() != b.Nominal() || a.Majority() != b.Majority() ||
			a.PositiveVotes() != b.PositiveVotes() || a.TotalVotes() != b.TotalVotes() {
			return false
		}
		fa, fb := a.DirtyFingerprint(), b.DirtyFingerprint()
		for j := 1; j < len(fa) || j < len(fb); j++ {
			if fa.F(j) != fb.F(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintMatchesBruteForce cross-checks the incremental fingerprint
// against a recomputation from raw per-item counts.
func TestFingerprintMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	const n = 50
	m := NewMatrix(n)
	counts := make([]int, n)
	for i := 0; i < 500; i++ {
		item := rng.IntN(n)
		label := Label(rng.IntN(2))
		m.Add(Vote{Item: item, Label: label})
		if label == Dirty {
			counts[item]++
		}
	}
	want := stats.NewFreqFromCounts(counts)
	got := m.DirtyFingerprint()
	for j := 1; j < len(want) || j < len(got); j++ {
		if got.F(j) != want.F(j) {
			t.Fatalf("f%d = %d, want %d", j, got.F(j), want.F(j))
		}
	}
}

func TestNominalMajorityBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	const n = 30
	m := NewMatrix(n)
	pos := make([]int, n)
	neg := make([]int, n)
	for i := 0; i < 400; i++ {
		item := rng.IntN(n)
		label := Label(rng.IntN(2))
		m.Add(Vote{Item: item, Label: label})
		if label == Dirty {
			pos[item]++
		} else {
			neg[item]++
		}
		var wantNom, wantMaj int64
		for k := 0; k < n; k++ {
			if pos[k] > 0 {
				wantNom++
			}
			if pos[k] > neg[k] {
				wantMaj++
			}
		}
		if m.Nominal() != wantNom {
			t.Fatalf("step %d: Nominal = %d, want %d", i, m.Nominal(), wantNom)
		}
		if m.Majority() != wantMaj {
			t.Fatalf("step %d: Majority = %d, want %d", i, m.Majority(), wantMaj)
		}
	}
}

func TestHistory(t *testing.T) {
	m := NewMatrix(2)
	v1 := Vote{Item: 0, Worker: 1, Label: Dirty}
	v2 := Vote{Item: 0, Worker: 2, Label: Clean}
	m.Add(v1)
	m.Add(v2)
	h := m.History(0)
	if len(h) != 2 || h[0] != v1 || h[1] != v2 {
		t.Fatalf("history = %v", h)
	}
	if len(m.History(1)) != 0 {
		t.Fatal("untouched item has history")
	}
}

func TestWithoutHistory(t *testing.T) {
	m := NewMatrix(2, WithoutHistory())
	m.Add(Vote{Item: 0, Label: Dirty})
	if m.History(0) != nil {
		t.Fatal("WithoutHistory still retained votes")
	}
	if m.Nominal() != 1 {
		t.Fatal("aggregates broken without history")
	}
}

func TestMajorityVector(t *testing.T) {
	m := NewMatrix(3)
	m.Add(Vote{Item: 1, Label: Dirty})
	v := m.MajorityVector()
	if v[0] || !v[1] || v[2] {
		t.Fatalf("MajorityVector = %v", v)
	}
}

func TestCoverage(t *testing.T) {
	m := NewMatrix(4)
	if m.Coverage() != 0 {
		t.Fatal("empty coverage nonzero")
	}
	m.Add(Vote{Item: 0, Label: Clean})
	m.Add(Vote{Item: 1, Label: Dirty})
	if got := m.Coverage(); got != 0.5 {
		t.Fatalf("Coverage = %v", got)
	}
	if got := NewMatrix(0).Coverage(); got != 0 {
		t.Fatalf("zero-item coverage = %v", got)
	}
}

func TestReset(t *testing.T) {
	m := NewMatrix(2)
	m.Add(Vote{Item: 0, Worker: 3, Label: Dirty})
	m.Reset()
	if m.TotalVotes() != 0 || m.Nominal() != 0 || m.Majority() != 0 ||
		m.NumWorkers() != 0 || m.PositiveVotes() != 0 {
		t.Fatal("Reset left state behind")
	}
	if len(m.History(0)) != 0 {
		t.Fatal("Reset left history")
	}
	if m.DirtyFingerprint().Species() != 0 {
		t.Fatal("Reset left fingerprint")
	}
	// Matrix is reusable after reset.
	m.Add(Vote{Item: 1, Label: Dirty})
	if m.Nominal() != 1 {
		t.Fatal("matrix unusable after reset")
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(-1) did not panic")
		}
	}()
	NewMatrix(-1)
}

// TestNumWorkersSparseIDs: the worker bitset must count negative and huge
// IDs (hand-written vote logs) via the sparse fallback without ballooning.
func TestNumWorkersSparseIDs(t *testing.T) {
	m := NewMatrix(3)
	for _, w := range []int{0, 0, -5, -5, 1 << 40, 1 << 40, 7, -9} {
		m.Add(Vote{Item: 0, Worker: w, Label: Dirty})
	}
	if got := m.NumWorkers(); got != 5 {
		t.Fatalf("NumWorkers = %d, want 5 (0, -5, 1<<40, 7, -9)", got)
	}
	m.Reset()
	if got := m.NumWorkers(); got != 0 {
		t.Fatalf("NumWorkers after reset = %d", got)
	}
	m.Add(Vote{Item: 0, Worker: -5, Label: Clean})
	m.Add(Vote{Item: 0, Worker: 2, Label: Clean})
	if got := m.NumWorkers(); got != 2 {
		t.Fatalf("NumWorkers after reuse = %d, want 2", got)
	}
}
