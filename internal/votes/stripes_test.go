package votes

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

func TestStripesDrainPreservesBatchesWhole(t *testing.T) {
	s := NewStripes(4)
	var want []Vote
	for b := 0; b < 10; b++ {
		batch := make([]Vote, 1+b%3)
		for i := range batch {
			batch[i] = Vote{Item: b, Worker: i, Label: Dirty}
		}
		want = append(want, batch...)
		s.PutBatch(batch)
	}
	if got := s.Pending(); got != int64(len(want)) {
		t.Fatalf("pending = %d, want %d", got, len(want))
	}
	var got []Vote
	batchStarts := map[int]bool{}
	if err := s.Drain(func(vs []Vote) error {
		// Each stripe buffer holds whole batches: a batch's votes share an
		// Item and appear consecutively with Worker 0..k.
		for i := 0; i < len(vs); {
			if vs[i].Worker != 0 {
				return fmt.Errorf("batch %d starts mid-batch at worker %d", vs[i].Item, vs[i].Worker)
			}
			batchStarts[vs[i].Item] = true
			j := i + 1
			for j < len(vs) && vs[j].Item == vs[i].Item && vs[j].Worker == j-i {
				j++
			}
			i = j
		}
		got = append(got, vs...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending after drain = %d", s.Pending())
	}
	if len(got) != len(want) || len(batchStarts) != 10 {
		t.Fatalf("drained %d votes across %d batches, want %d across 10", len(got), len(batchStarts), len(want))
	}
	// Same multiset of votes (drain reorders whole batches, never loses one).
	key := func(v Vote) string { return fmt.Sprintf("%d/%d/%v", v.Item, v.Worker, v.Label) }
	a, b := make([]string, len(got)), make([]string, len(want))
	for i := range got {
		a[i], b[i] = key(got[i]), key(want[i])
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vote multiset differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestStripesDrainErrorKeepsVotesStaged: a failing drain callback (journal
// error) must leave the failed stripe and all later stripes untouched, so a
// retry re-delivers every undrained vote.
func TestStripesDrainErrorKeepsVotesStaged(t *testing.T) {
	s := NewStripes(3)
	for b := 0; b < 6; b++ {
		s.PutBatch([]Vote{{Item: b}})
	}
	boom := errors.New("journal down")
	calls := 0
	err := s.Drain(func(vs []Vote) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("drain error = %v", err)
	}
	if p := s.Pending(); p != 4 {
		t.Fatalf("pending after failed drain = %d, want 4 (two stripes of two)", p)
	}
	var retried int
	if err := s.Drain(func(vs []Vote) error { retried += len(vs); return nil }); err != nil {
		t.Fatal(err)
	}
	if retried != 4 || s.Pending() != 0 {
		t.Fatalf("retry drained %d votes (pending %d), want 4 (0)", retried, s.Pending())
	}
}

func TestStripesConcurrentPutAndDrain(t *testing.T) {
	s := NewStripes(0) // GOMAXPROCS stripes
	const writers, batches = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				s.PutBatch([]Vote{{Item: w, Worker: b}, {Item: w, Worker: b}})
			}
		}(w)
	}
	doneWriting := make(chan struct{})
	done := make(chan struct{})
	var drained int64
	go func() {
		defer close(done)
		for {
			_ = s.Drain(func(vs []Vote) error { drained += int64(len(vs)); return nil })
			select {
			case <-doneWriting:
				_ = s.Drain(func(vs []Vote) error { drained += int64(len(vs)); return nil })
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(doneWriting)
	<-done
	if want := int64(writers * batches * 2); drained != want {
		t.Fatalf("drained %d votes, want %d", drained, want)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after everything drained", s.Pending())
	}
}
