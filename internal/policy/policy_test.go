package policy

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestParseValidPolicy(t *testing.T) {
	raw := []byte(`{
		"rules": [
			{"name": "too-dirty", "metric": "remaining", "op": ">", "value": 25},
			{"name": "ci-wide", "metric": "ci_upper", "op": ">", "value": 120, "severity": "warning"},
			{"name": "drifting", "metric": "drift_ratio", "op": ">", "value": 2}
		],
		"min_tasks": 50,
		"ci": {"level": 0.9, "replicates": 100},
		"webhook": {"url": "http://example.com/hook", "timeout_ms": 500, "max_attempts": 4}
	}`)
	p, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Rules) != 3 || p.MinTasks != 50 {
		t.Fatalf("unexpected policy: %+v", p)
	}
	n := p.Needs()
	if !n.CI || !n.Drift {
		t.Fatalf("Needs = %+v, want CI and Drift", n)
	}
	if n.CILevel != 0.9 || n.CIReplicates != 100 {
		t.Fatalf("Needs CI params = %+v", n)
	}
}

func TestNeedsDefaults(t *testing.T) {
	p := &Policy{Rules: []Rule{{Name: "r", Metric: MetricRemaining, Op: ">", Value: 1}}}
	n := p.Needs()
	if n.CI || n.Drift {
		t.Fatalf("Needs = %+v, want neither CI nor Drift", n)
	}
	if n.CILevel != 0.95 || n.CIReplicates != 200 {
		t.Fatalf("default CI params = %+v", n)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want string
	}{
		{"empty rules", `{"rules": []}`, "no rules"},
		{"missing name", `{"rules": [{"metric": "remaining", "op": ">", "value": 1}]}`, "no name"},
		{"dup name", `{"rules": [{"name":"a","metric":"remaining","op":">","value":1},{"name":"a","metric":"remaining","op":"<","value":1}]}`, "duplicate"},
		{"bad metric", `{"rules": [{"name":"a","metric":"nope","op":">","value":1}]}`, "unknown metric"},
		{"bad op", `{"rules": [{"name":"a","metric":"remaining","op":"!=","value":1}]}`, "unknown op"},
		{"bad severity", `{"rules": [{"name":"a","metric":"remaining","op":">","value":1,"severity":"fatal"}]}`, "unknown severity"},
		{"negative min_tasks", `{"min_tasks": -1, "rules": [{"name":"a","metric":"remaining","op":">","value":1}]}`, "min_tasks"},
		{"bad ci level", `{"ci": {"level": 1.5}, "rules": [{"name":"a","metric":"remaining","op":">","value":1}]}`, "ci.level"},
		{"empty webhook url", `{"webhook": {"url": ""}, "rules": [{"name":"a","metric":"remaining","op":">","value":1}]}`, "webhook.url"},
		{"not json", `{`, "policy:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.raw))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.raw)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEvaluateActions(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Name: "crit", Metric: MetricRemaining, Op: ">", Value: 25},
		{Name: "warn", Metric: MetricSwitchTotal, Op: ">=", Value: 100, Severity: SeverityWarning},
	}}
	cases := []struct {
		name string
		in   Inputs
		want string
		vio  int
	}{
		{"clean", Inputs{Remaining: 10, SwitchTotal: 50}, "proceed", 0},
		{"warn only", Inputs{Remaining: 10, SwitchTotal: 100}, "warn", 1},
		{"critical", Inputs{Remaining: 26, SwitchTotal: 50}, "quarantine", 1},
		{"both", Inputs{Remaining: 26, SwitchTotal: 120}, "quarantine", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := p.Evaluate(tc.in)
			if dec.Action != tc.want || len(dec.Violations) != tc.vio {
				t.Fatalf("Evaluate(%+v) = %s with %d violations, want %s with %d",
					tc.in, dec.Action, len(dec.Violations), tc.want, tc.vio)
			}
			if !dec.Armed {
				t.Fatal("decision should be armed with MinTasks=0")
			}
		})
	}
}

func TestEvaluateMinTasksDisarms(t *testing.T) {
	p := &Policy{
		MinTasks: 100,
		Rules:    []Rule{{Name: "crit", Metric: MetricRemaining, Op: ">", Value: 0}},
	}
	dec := p.Evaluate(Inputs{Remaining: 1e9, Tasks: 99})
	if dec.Action != "proceed" || dec.Armed {
		t.Fatalf("unarmed gate produced %s (armed=%v), want proceed (unarmed)", dec.Action, dec.Armed)
	}
	dec = p.Evaluate(Inputs{Remaining: 1e9, Tasks: 100})
	if dec.Action != "quarantine" || !dec.Armed {
		t.Fatalf("armed gate produced %s (armed=%v), want quarantine (armed)", dec.Action, dec.Armed)
	}
}

func TestEvaluateUnavailableMetricsSkipped(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Name: "ci", Metric: MetricCIUpper, Op: ">", Value: 1},
		{Name: "drift", Metric: MetricDriftRatio, Op: ">", Value: 1},
	}}
	dec := p.Evaluate(Inputs{CIUpper: 100, DriftRatio: 100}) // Has* false
	if dec.Action != "proceed" {
		t.Fatalf("action = %s, want proceed when metrics unavailable", dec.Action)
	}
	if len(dec.Unavailable) != 2 {
		t.Fatalf("Unavailable = %v, want both rules listed", dec.Unavailable)
	}
	dec = p.Evaluate(Inputs{CIUpper: 100, HasCI: true, DriftRatio: 100, HasDrift: true})
	if dec.Action != "quarantine" || len(dec.Unavailable) != 0 {
		t.Fatalf("action = %s unavailable = %v, want quarantine with none", dec.Action, dec.Unavailable)
	}
}

func TestDecisionJSONRoundTrips(t *testing.T) {
	p := &Policy{Rules: []Rule{{Name: "r", Metric: MetricRemaining, Op: ">", Value: 5}}}
	dec := p.Evaluate(Inputs{Remaining: 10, SwitchTotal: 20, Tasks: 3, Votes: 9, Version: 42})
	dec.Session = "s1"
	body, err := json.Marshal(dec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Decision
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Session != "s1" || back.Action != "quarantine" || back.Version != 42 || back.Tasks != 3 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Inputs.CIUpper != nil || back.Inputs.DriftRatio != nil {
		t.Fatal("absent optional inputs should stay absent")
	}
}

func TestDriftRatio(t *testing.T) {
	cases := []struct {
		recent, allTime, want float64
	}{
		{10, 5, 2},
		{0, 0, 1},
		{5, 0, 1e6},    // clamped, not +Inf
		{1e12, 1, 1e6}, // clamped high
		{0, 10, 0},
	}
	for _, tc := range cases {
		if got := DriftRatio(tc.recent, tc.allTime); got != tc.want {
			t.Errorf("DriftRatio(%g, %g) = %g, want %g", tc.recent, tc.allTime, got, tc.want)
		}
	}
	if r := DriftRatio(math.Inf(1), 1); math.IsInf(r, 0) {
		t.Fatal("DriftRatio must never return Inf")
	}
}

func TestParseActionRoundTrip(t *testing.T) {
	for _, a := range []Action{ActionProceed, ActionWarn, ActionQuarantine} {
		got, err := ParseAction(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAction(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAction("panic"); err == nil {
		t.Fatal("ParseAction accepted unknown action")
	}
}

func BenchmarkGateEvaluate(b *testing.B) {
	p := &Policy{Rules: []Rule{
		{Name: "too-dirty", Metric: MetricRemaining, Op: ">", Value: 25},
		{Name: "total", Metric: MetricSwitchTotal, Op: ">", Value: 500, Severity: SeverityWarning},
		{Name: "drift", Metric: MetricDriftRatio, Op: ">", Value: 2},
	}}
	in := Inputs{Remaining: 12, SwitchTotal: 120, DriftRatio: 1.1, HasDrift: true, Tasks: 400, Votes: 2000, Version: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dec := p.Evaluate(in)
		if dec.Action != "proceed" {
			b.Fatalf("unexpected action %s", dec.Action)
		}
	}
}
