package policy

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource is a minimal Source with engine-like notifier semantics:
// non-blocking cap-1 sends on every Bump.
type fakeSource struct {
	mu       sync.Mutex
	version  uint64
	in       Inputs
	chans    []chan<- struct{}
	inErr    error
	inCalls  atomic.Int64
	needSeen atomic.Value // Needs
}

func (f *fakeSource) Version() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

func (f *fakeSource) Notify(ch chan<- struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.chans = append(f.chans, ch)
}

func (f *fakeSource) StopNotify(ch chan<- struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, c := range f.chans {
		if c == ch {
			f.chans = append(f.chans[:i], f.chans[i+1:]...)
			return
		}
	}
}

func (f *fakeSource) Inputs(need Needs) (Inputs, error) {
	f.inCalls.Add(1)
	f.needSeen.Store(need)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inErr != nil {
		return Inputs{}, f.inErr
	}
	in := f.in
	in.Version = f.version
	return in, nil
}

// Set mutates the source and wakes subscribers, like engine bump().
func (f *fakeSource) Set(in Inputs) {
	f.mu.Lock()
	f.version++
	f.in = in
	chans := append([]chan<- struct{}(nil), f.chans...)
	f.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func quarantinePolicy() *Policy {
	return &Policy{Rules: []Rule{{Name: "dirty", Metric: MetricRemaining, Op: ">", Value: 10}}}
}

func TestGateSeedsFrameSynchronously(t *testing.T) {
	src := &fakeSource{}
	src.Set(Inputs{Remaining: 50})
	g := NewGate(quarantinePolicy(), src, GateConfig{SessionID: "s"})
	defer g.Close()
	f := g.Frame()
	if f == nil {
		t.Fatal("frame nil after NewGate")
	}
	if f.Action != ActionQuarantine || f.Version != 1 {
		t.Fatalf("seed frame = action %v version %d, want quarantine v1", f.Action, f.Version)
	}
	if !bytes.Contains(f.Body, []byte(`"action":"quarantine"`)) {
		t.Fatalf("body %s lacks action", f.Body)
	}
	if f.Decision.Session != "s" {
		t.Fatalf("decision session = %q", f.Decision.Session)
	}
}

func TestGateEventDrivenReEvaluation(t *testing.T) {
	src := &fakeSource{}
	src.Set(Inputs{Remaining: 0})
	var transitions atomic.Int64
	g := NewGate(quarantinePolicy(), src, GateConfig{
		SessionID: "s",
		OnTransition: func(prev, cur Action, dec Decision, body []byte) {
			if transitions.Add(1) == 1 {
				if prev != ActionProceed || cur != ActionQuarantine {
					t.Errorf("transition %v -> %v, want proceed -> quarantine", prev, cur)
				}
				if len(body) == 0 || dec.Action != "quarantine" {
					t.Errorf("transition payload dec=%+v body=%d bytes", dec, len(body))
				}
			}
		},
	})
	defer g.Close()

	if g.Frame().Action != ActionProceed {
		t.Fatalf("seed action = %v", g.Frame().Action)
	}
	calls := src.inCalls.Load()

	// No mutation → no evaluation (event-driven, zero idle cost).
	time.Sleep(50 * time.Millisecond)
	if got := src.inCalls.Load(); got != calls {
		t.Fatalf("gate evaluated %d times while idle", got-calls)
	}

	src.Set(Inputs{Remaining: 50})
	waitFor(t, "quarantine frame", func() bool { return g.Frame().Action == ActionQuarantine })
	if transitions.Load() != 1 {
		t.Fatalf("transitions = %d, want 1", transitions.Load())
	}
	if g.Frame().Version != 2 {
		t.Fatalf("frame version = %d, want 2", g.Frame().Version)
	}

	// Back below threshold → transition back.
	src.Set(Inputs{Remaining: 1})
	waitFor(t, "proceed frame", func() bool { return g.Frame().Action == ActionProceed })
}

func TestGateCoalescesBursts(t *testing.T) {
	src := &fakeSource{}
	src.Set(Inputs{})
	g := NewGate(quarantinePolicy(), src, GateConfig{MinInterval: 20 * time.Millisecond})
	defer g.Close()
	before := src.inCalls.Load()
	for i := 0; i < 100; i++ {
		src.Set(Inputs{Remaining: float64(i)})
	}
	waitFor(t, "frame to catch up", func() bool { return !g.Stale() })
	evals := src.inCalls.Load() - before
	if evals > 10 {
		t.Fatalf("burst of 100 mutations triggered %d evaluations, want coalescing", evals)
	}
}

func TestGateSetPolicySynchronous(t *testing.T) {
	src := &fakeSource{}
	src.Set(Inputs{Remaining: 50})
	g := NewGate(quarantinePolicy(), src, GateConfig{})
	defer g.Close()
	if g.Frame().Action != ActionQuarantine {
		t.Fatalf("seed = %v", g.Frame().Action)
	}
	g.SetPolicy(&Policy{Rules: []Rule{{Name: "lax", Metric: MetricRemaining, Op: ">", Value: 1000}}})
	if g.Frame().Action != ActionProceed {
		t.Fatalf("after SetPolicy frame = %v, want proceed immediately", g.Frame().Action)
	}
}

func TestGateInputsErrorKeepsPreviousFrame(t *testing.T) {
	src := &fakeSource{}
	src.Set(Inputs{Remaining: 50})
	g := NewGate(quarantinePolicy(), src, GateConfig{})
	defer g.Close()
	want := g.Frame()
	src.mu.Lock()
	src.inErr = errTest
	src.mu.Unlock()
	src.Set(Inputs{})
	time.Sleep(20 * time.Millisecond)
	if got := g.Frame(); got.Version != want.Version || got.Action != want.Action {
		t.Fatalf("frame changed on inputs error: %+v", got)
	}
}

var errTest = &net_Error{}

type net_Error struct{}

func (*net_Error) Error() string { return "transient" }

func TestGateNeedsPropagated(t *testing.T) {
	src := &fakeSource{}
	src.Set(Inputs{})
	p := &Policy{
		Rules: []Rule{{Name: "ci", Metric: MetricCIUpper, Op: ">", Value: 9}},
		CI:    &CIParams{Level: 0.9, Replicates: 50},
	}
	g := NewGate(p, src, GateConfig{})
	defer g.Close()
	need := src.needSeen.Load().(Needs)
	if !need.CI || need.CILevel != 0.9 || need.CIReplicates != 50 {
		t.Fatalf("need = %+v", need)
	}
}

func TestGateCloseUnregisters(t *testing.T) {
	src := &fakeSource{}
	src.Set(Inputs{})
	g := NewGate(quarantinePolicy(), src, GateConfig{})
	g.Close()
	g.Close() // idempotent
	src.mu.Lock()
	n := len(src.chans)
	src.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d notifiers still registered after Close", n)
	}
}

func TestDispatcherDeliversWithRetry(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError) // fail first attempt
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	d := NewDispatcher(DispatcherConfig{BaseBackoff: time.Millisecond, MaxAttempts: 3})
	defer d.Close()
	if !d.Enqueue(Delivery{URL: srv.URL, Body: []byte(`{"action":"quarantine"}`)}) {
		t.Fatal("enqueue refused")
	}
	waitFor(t, "delivery", func() bool { return d.Deliveries() == 1 })
	if hits.Load() != 2 {
		t.Fatalf("server hit %d times, want 2 (one retry)", hits.Load())
	}
	if d.DeadLetters() != 0 {
		t.Fatalf("dead letters = %d", d.DeadLetters())
	}
}

func TestDispatcherDeadLettersAfterExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	d := NewDispatcher(DispatcherConfig{BaseBackoff: time.Millisecond, MaxAttempts: 2})
	defer d.Close()
	d.Enqueue(Delivery{URL: srv.URL, Body: []byte(`{}`)})
	waitFor(t, "dead letter", func() bool { return d.DeadLetters() == 1 })
	if d.Deliveries() != 0 {
		t.Fatalf("deliveries = %d", d.Deliveries())
	}
}

func TestDispatcherQueueOverflowCountsDeadLetter(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)
	d := NewDispatcher(DispatcherConfig{QueueSize: 1, Workers: 1, MaxAttempts: 1, Timeout: 10 * time.Second})
	defer d.Close()
	d.Enqueue(Delivery{URL: srv.URL, Body: []byte(`{}`)}) // occupies the worker
	waitFor(t, "worker busy", func() bool { return len(d.queue) == 0 })
	d.Enqueue(Delivery{URL: srv.URL, Body: []byte(`{}`)}) // fills the queue
	if d.Enqueue(Delivery{URL: srv.URL, Body: []byte(`{}`)}) {
		t.Fatal("enqueue succeeded on full queue")
	}
	if d.DeadLetters() != 1 {
		t.Fatalf("dead letters = %d, want 1", d.DeadLetters())
	}
}

func TestDispatcherPerDeliveryOverrides(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()
	d := NewDispatcher(DispatcherConfig{BaseBackoff: time.Millisecond, MaxAttempts: 5})
	defer d.Close()
	d.Enqueue(Delivery{URL: srv.URL, Body: []byte(`{}`), MaxAttempts: 1})
	waitFor(t, "dead letter", func() bool { return d.DeadLetters() == 1 })
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want exactly 1 (override MaxAttempts)", hits.Load())
	}
}
