// Package policy implements the declarative quality-gate layer behind
// dqm-serve's /v1/sessions/{id}/policy and /gate endpoints: named rules over
// the quantities the read plane already computes (estimated remaining errors,
// the SWITCH total, the bootstrap-CI upper bound, and the windowed drift
// ratio), each with a severity, folded into one proceed|warn|quarantine
// decision per session version.
//
// This is the paper's point made operational: the DQM estimate exists to
// drive the decision to stop or keep cleaning, so the gate turns "remaining
// errors ≈ 12" into "quarantine this dataset" — a machine-readable verdict CI
// pipelines poll cheaply (pre-serialized, ETag'd) and alerting hooks react to
// (webhooks fire on decision transitions, not on every evaluation).
//
// Evaluation is event-driven: a Gate registers a version notifier on its
// session and re-evaluates only when the session mutates, so idle sessions
// cost zero CPU regardless of how many policies are attached, and ingest
// stays allocation-free (the notifier send is the engine's existing
// non-blocking wakeup).
package policy

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// Action is the gate outcome, ordered by severity.
type Action int

const (
	// ActionProceed: no rule violated — cleaning can stop or the dataset can
	// ship, as far as this policy is concerned.
	ActionProceed Action = iota
	// ActionWarn: at least one warning-severity rule violated, none critical.
	ActionWarn
	// ActionQuarantine: at least one critical rule violated — the dataset
	// should not ship.
	ActionQuarantine
)

// String returns the wire spelling ("proceed", "warn", "quarantine").
func (a Action) String() string {
	switch a {
	case ActionWarn:
		return "warn"
	case ActionQuarantine:
		return "quarantine"
	default:
		return "proceed"
	}
}

// Rule metrics: the quantities a rule can threshold on.
const (
	// MetricRemaining is the SWITCH remaining-error estimate
	// (Switch.Total − Voting, floored at zero).
	MetricRemaining = "remaining"
	// MetricSwitchTotal is the SWITCH total error estimate.
	MetricSwitchTotal = "switch_total"
	// MetricCIUpper is the upper bound of the bootstrap confidence interval
	// for the SWITCH total (requires track_confidence on the session).
	MetricCIUpper = "ci_upper"
	// MetricDriftRatio is the windowed drift ratio: the decayed-window
	// remaining estimate divided by the all-time remaining estimate
	// (requires a window config with decay_alpha > 0). Values above 1 mean
	// recent tasks look dirtier than the stream's history.
	MetricDriftRatio = "drift_ratio"
)

// Rule severities.
const (
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// Rule is one named threshold over a gate metric. A rule is violated when
// `metric op value` holds (e.g. remaining > 25).
type Rule struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"`
	Op       string  `json:"op"` // ">", ">=", "<", "<="
	Value    float64 `json:"value"`
	Severity string  `json:"severity,omitempty"` // "warning" | "critical"; default critical
}

// CIParams tunes the bootstrap interval ci_upper rules evaluate.
type CIParams struct {
	Level      float64 `json:"level,omitempty"`      // default 0.95
	Replicates int     `json:"replicates,omitempty"` // default 200
}

// Webhook configures transition alerting: whenever the gate's action changes
// (proceed→quarantine and back), the decision document is POSTed to URL
// through the bounded async dispatcher.
type Webhook struct {
	URL string `json:"url"`
	// TimeoutMS bounds one delivery attempt; 0 selects the dispatcher default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxAttempts bounds delivery attempts (1 = no retries); 0 selects the
	// dispatcher default.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Policy is one session's declarative gate: rules, optional evaluation
// parameters, and optional transition webhook. The JSON form is the wire
// format of PUT/GET /v1/sessions/{id}/policy and of the -policy-file server
// default.
type Policy struct {
	Rules []Rule `json:"rules"`
	// MinTasks arms the gate only after this many completed tasks; before
	// that every evaluation proceeds (estimates over a handful of tasks are
	// noise, and a quarantine webhook on task 2 is a page nobody wants).
	MinTasks int64     `json:"min_tasks,omitempty"`
	CI       *CIParams `json:"ci,omitempty"`
	Webhook  *Webhook  `json:"webhook,omitempty"`
}

// Parse strictly decodes and validates a policy document.
func Parse(raw []byte) (*Policy, error) {
	var p Policy
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate reports whether the policy is evaluable: at least one rule, every
// rule naming a known metric/op/severity with a finite threshold, rule names
// unique and non-empty, webhook URL non-empty when a webhook is configured.
func (p *Policy) Validate() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("policy: no rules")
	}
	seen := make(map[string]struct{}, len(p.Rules))
	for i, r := range p.Rules {
		if r.Name == "" {
			return fmt.Errorf("policy: rule %d has no name", i)
		}
		if _, dup := seen[r.Name]; dup {
			return fmt.Errorf("policy: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = struct{}{}
		switch r.Metric {
		case MetricRemaining, MetricSwitchTotal, MetricCIUpper, MetricDriftRatio:
		default:
			return fmt.Errorf("policy: rule %q: unknown metric %q (want %s, %s, %s or %s)",
				r.Name, r.Metric, MetricRemaining, MetricSwitchTotal, MetricCIUpper, MetricDriftRatio)
		}
		switch r.Op {
		case ">", ">=", "<", "<=":
		default:
			return fmt.Errorf("policy: rule %q: unknown op %q (want >, >=, < or <=)", r.Name, r.Op)
		}
		switch r.Severity {
		case "", SeverityWarning, SeverityCritical:
		default:
			return fmt.Errorf("policy: rule %q: unknown severity %q (want %s or %s)",
				r.Name, r.Severity, SeverityWarning, SeverityCritical)
		}
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
			return fmt.Errorf("policy: rule %q: threshold must be finite", r.Name)
		}
	}
	if p.MinTasks < 0 {
		return fmt.Errorf("policy: min_tasks must be non-negative")
	}
	if p.CI != nil {
		if p.CI.Level != 0 && (p.CI.Level <= 0 || p.CI.Level >= 1) {
			return fmt.Errorf("policy: ci.level must be in (0, 1)")
		}
		if p.CI.Replicates < 0 {
			return fmt.Errorf("policy: ci.replicates must be non-negative")
		}
	}
	if p.Webhook != nil {
		if p.Webhook.URL == "" {
			return fmt.Errorf("policy: webhook.url is empty")
		}
		if p.Webhook.TimeoutMS < 0 || p.Webhook.MaxAttempts < 0 {
			return fmt.Errorf("policy: webhook timeout_ms and max_attempts must be non-negative")
		}
	}
	return nil
}

// Needs describes which inputs a policy's rules actually reference, so
// sources skip expensive quantities (the bootstrap CI, the windowed read)
// nobody thresholds on.
type Needs struct {
	CI           bool
	CILevel      float64
	CIReplicates int
	Drift        bool
}

// Needs derives the policy's input requirements.
func (p *Policy) Needs() Needs {
	n := Needs{CILevel: 0.95, CIReplicates: 200}
	if p.CI != nil {
		if p.CI.Level != 0 {
			n.CILevel = p.CI.Level
		}
		if p.CI.Replicates != 0 {
			n.CIReplicates = p.CI.Replicates
		}
	}
	for _, r := range p.Rules {
		switch r.Metric {
		case MetricCIUpper:
			n.CI = true
		case MetricDriftRatio:
			n.Drift = true
		}
	}
	return n
}

// Inputs is one metrics snapshot a policy is evaluated against. HasCI and
// HasDrift report availability: a rule over an unavailable metric is skipped
// and surfaced in Decision.Unavailable rather than guessed at.
type Inputs struct {
	Remaining   float64
	SwitchTotal float64
	CIUpper     float64
	HasCI       bool
	DriftRatio  float64
	HasDrift    bool
	Tasks       int64
	Votes       int64
	// Version is the session version the snapshot was read at (read BEFORE
	// the estimates, so concurrent mutation yields re-evaluation, not a skip).
	Version uint64
}

// DriftRatio computes the windowed drift ratio with the division guarded:
// a zero all-time estimate with a non-zero recent one clamps to maxDriftRatio
// (JSON cannot carry +Inf), and zero-over-zero is flat (1).
func DriftRatio(recent, allTime float64) float64 {
	const maxDriftRatio = 1e6
	if allTime <= 0 {
		if recent <= 0 {
			return 1
		}
		return maxDriftRatio
	}
	r := recent / allTime
	if r > maxDriftRatio {
		return maxDriftRatio
	}
	return r
}

// Violation is one triggered rule in a decision.
type Violation struct {
	Rule      string  `json:"rule"`
	Metric    string  `json:"metric"`
	Severity  string  `json:"severity"`
	Value     float64 `json:"value"`
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
}

// DecisionInputs is the wire echo of the evaluated metrics snapshot, so a
// reader of the decision sees what the rules saw.
type DecisionInputs struct {
	Remaining   float64  `json:"remaining"`
	SwitchTotal float64  `json:"switch_total"`
	CIUpper     *float64 `json:"ci_upper,omitempty"`
	DriftRatio  *float64 `json:"drift_ratio,omitempty"`
}

// Decision is one gate evaluation: the action, the violations that produced
// it, and the session position it was computed at. Serialized once per
// version by the Gate and served pre-encoded.
type Decision struct {
	Session     string         `json:"session,omitempty"`
	Action      string         `json:"action"`
	Version     uint64         `json:"version"`
	Tasks       int64          `json:"tasks"`
	Votes       int64          `json:"votes"`
	EvaluatedAt time.Time      `json:"evaluated_at"`
	Armed       bool           `json:"armed"`
	Violations  []Violation    `json:"violations,omitempty"`
	Unavailable []string       `json:"unavailable,omitempty"`
	Inputs      DecisionInputs `json:"inputs"`
}

// Evaluate applies the policy to one inputs snapshot. Before MinTasks the
// gate is unarmed and always proceeds (Armed reports it); rules over
// unavailable metrics are listed in Unavailable and do not violate.
func (p *Policy) Evaluate(in Inputs) Decision {
	dec := Decision{
		Action:  ActionProceed.String(),
		Version: in.Version,
		Tasks:   in.Tasks,
		Votes:   in.Votes,
		Armed:   in.Tasks >= p.MinTasks,
		Inputs: DecisionInputs{
			Remaining:   in.Remaining,
			SwitchTotal: in.SwitchTotal,
		},
	}
	if in.HasCI {
		v := in.CIUpper
		dec.Inputs.CIUpper = &v
	}
	if in.HasDrift {
		v := in.DriftRatio
		dec.Inputs.DriftRatio = &v
	}
	if !dec.Armed {
		return dec
	}
	action := ActionProceed
	for _, r := range p.Rules {
		var value float64
		switch r.Metric {
		case MetricRemaining:
			value = in.Remaining
		case MetricSwitchTotal:
			value = in.SwitchTotal
		case MetricCIUpper:
			if !in.HasCI {
				dec.Unavailable = append(dec.Unavailable, r.Name)
				continue
			}
			value = in.CIUpper
		case MetricDriftRatio:
			if !in.HasDrift {
				dec.Unavailable = append(dec.Unavailable, r.Name)
				continue
			}
			value = in.DriftRatio
		}
		var hit bool
		switch r.Op {
		case ">":
			hit = value > r.Value
		case ">=":
			hit = value >= r.Value
		case "<":
			hit = value < r.Value
		case "<=":
			hit = value <= r.Value
		}
		if !hit {
			continue
		}
		sev := r.Severity
		if sev == "" {
			sev = SeverityCritical
		}
		dec.Violations = append(dec.Violations, Violation{
			Rule:      r.Name,
			Metric:    r.Metric,
			Severity:  sev,
			Value:     value,
			Op:        r.Op,
			Threshold: r.Value,
			Message:   fmt.Sprintf("%s: %s %.6g %s %.6g", r.Name, r.Metric, value, r.Op, r.Value),
		})
		if sev == SeverityCritical {
			action = ActionQuarantine
		} else if action == ActionProceed {
			action = ActionWarn
		}
	}
	dec.Action = action.String()
	return dec
}

// ParseAction inverts Action.String (the decision wire form).
func ParseAction(s string) (Action, error) {
	switch s {
	case "proceed":
		return ActionProceed, nil
	case "warn":
		return ActionWarn, nil
	case "quarantine":
		return ActionQuarantine, nil
	}
	return ActionProceed, fmt.Errorf("policy: unknown action %q", s)
}
