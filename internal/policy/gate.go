package policy

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Source is the gate's view of a session. It is deliberately narrow — version
// counter, change notification, and a metrics snapshot — so this package
// never imports the engine and callers (the server, the load generator, the
// engine's own benchmarks) adapt their session type in a few lines.
type Source interface {
	// Version returns the session's monotonically increasing mutation counter.
	Version() uint64
	// Notify registers ch for non-blocking wakeups on every mutation;
	// StopNotify unregisters it.
	Notify(ch chan<- struct{})
	StopNotify(ch chan<- struct{})
	// Inputs snapshots the gate metrics. need tells the source which
	// expensive quantities (bootstrap CI, windowed drift read) the policy
	// actually references, so it can skip the rest. Implementations must
	// read the version BEFORE the estimates so a concurrent mutation makes
	// the snapshot look stale (triggering re-evaluation) rather than fresh.
	Inputs(need Needs) (Inputs, error)
}

// Frame is one cached gate decision: the JSON-encoded Decision document
// exactly as the HTTP handler writes it, plus the version it was evaluated
// at (the ETag) and the decoded action (for transition detection and cheap
// introspection). Immutable after publication.
type Frame struct {
	Body    []byte
	Version uint64
	Action  Action
	// Decision is the decoded document backing Body, retained for callers
	// (loadgen, tests) that want fields without re-parsing.
	Decision Decision
}

// GateConfig configures one session's gate.
type GateConfig struct {
	// SessionID is echoed in every decision document.
	SessionID string
	// MinInterval, when positive, rate-limits evaluation: after each
	// evaluation the pump sleeps at least this long before reacting to
	// further notifications. Bursty ingest then coalesces into one trailing
	// evaluation instead of one per batch.
	MinInterval time.Duration
	// OnTransition fires from the pump goroutine whenever the decision
	// action changes (including the transition out of the seed decision).
	// body is the pre-serialized decision document.
	OnTransition func(prev, cur Action, dec Decision, body []byte)
}

// Gate owns event-driven evaluation of one policy over one source. It holds
// a cap-1 notification channel registered with the source, a single pump
// goroutine that drains it, and an atomically published Frame the read path
// serves without locks. Idle sessions never wake the pump: cost is strictly
// per-mutation.
type Gate struct {
	src Source
	cfg GateConfig

	policy atomic.Pointer[Policy]
	frame  atomic.Pointer[Frame]

	// evalMu serializes evaluate() between the pump goroutine and
	// synchronous SetPolicy re-evaluation, keeping transition detection
	// (prev frame → next frame) race-free.
	evalMu sync.Mutex

	ch        chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewGate attaches a policy to a source: it runs one synchronous evaluation
// (so the frame is never nil and a PUT's response can report the decision),
// registers for change notifications, and starts the pump.
func NewGate(p *Policy, src Source, cfg GateConfig) *Gate {
	g := &Gate{
		src:  src,
		cfg:  cfg,
		ch:   make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	g.policy.Store(p)
	g.evaluate()
	src.Notify(g.ch)
	go g.pump()
	return g
}

// Frame returns the current cached decision. Never nil after NewGate.
func (g *Gate) Frame() *Frame {
	return g.frame.Load()
}

// Policy returns the currently attached policy.
func (g *Gate) Policy() *Policy {
	return g.policy.Load()
}

// SetPolicy swaps the policy and synchronously re-evaluates, so the caller
// observes a decision computed under the new rules.
func (g *Gate) SetPolicy(p *Policy) {
	g.policy.Store(p)
	g.evaluate()
}

// Stale reports whether the cached decision lags the source (evaluation
// pending or rate-limited). A loadgen quiesce check, not a serving concern:
// the served frame is always internally consistent.
func (g *Gate) Stale() bool {
	f := g.frame.Load()
	return f == nil || f.Version != g.src.Version()
}

// Close unregisters the notifier and stops the pump, waiting for it to exit.
func (g *Gate) Close() {
	g.closeOnce.Do(func() {
		g.src.StopNotify(g.ch)
		close(g.stop)
		<-g.done
	})
}

func (g *Gate) pump() {
	defer close(g.done)
	var timer *time.Timer
	for {
		select {
		case <-g.stop:
			return
		case <-g.ch:
		}
		g.evaluate()
		if g.cfg.MinInterval > 0 {
			if timer == nil {
				timer = time.NewTimer(g.cfg.MinInterval)
			} else {
				timer.Reset(g.cfg.MinInterval)
			}
			select {
			case <-g.stop:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
	}
}

// evaluate snapshots inputs, applies the policy, serializes the decision
// once, detects action transitions, and publishes the new frame.
func (g *Gate) evaluate() {
	g.evalMu.Lock()
	defer g.evalMu.Unlock()

	p := g.policy.Load()
	if p == nil {
		return
	}
	in, err := g.src.Inputs(p.Needs())
	if err != nil {
		// Inputs can fail transiently (e.g. windowed read before the first
		// window closes). Keep the previous frame; the next mutation will
		// re-trigger. If there is no previous frame yet, publish an unarmed
		// proceed so readers never see a nil gate.
		if g.frame.Load() != nil {
			return
		}
		in = Inputs{Version: g.src.Version()}
	}
	dec := p.Evaluate(in)
	dec.Session = g.cfg.SessionID
	dec.EvaluatedAt = time.Now().UTC()
	body, merr := json.Marshal(dec)
	if merr != nil {
		return
	}
	action, _ := ParseAction(dec.Action)
	next := &Frame{Body: body, Version: dec.Version, Action: action, Decision: dec}

	prev := g.frame.Load()
	g.frame.Store(next)

	metricGateEvaluations.Inc()
	switch action {
	case ActionQuarantine:
		metricGateDecisionsQuarantine.Inc()
	case ActionWarn:
		metricGateDecisionsWarn.Inc()
	default:
		metricGateDecisionsProceed.Inc()
	}
	if prev != nil && prev.Action != action {
		metricGateTransitions.Inc()
		if g.cfg.OnTransition != nil {
			g.cfg.OnTransition(prev.Action, action, dec, body)
		}
	}
}
