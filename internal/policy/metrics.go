package policy

import "dqm/internal/metrics"

// Gate-plane instruments, on the shared Default registry like the engine's.
// Evaluations are event-driven (one per coalesced session mutation burst),
// so these counters also bound the gate plane's CPU cost: an idle fleet of
// gated sessions shows dqm_gate_evaluations_total flat.
var (
	metricGateEvaluations = metrics.Default.Counter("dqm_gate_evaluations_total",
		"Gate policy evaluations (event-driven; one per coalesced session mutation burst plus policy swaps).")
	metricGateDecisionsProceed = metrics.Default.Counter("dqm_gate_decisions_total",
		"Gate decisions by resulting action.",
		metrics.Label{Name: "action", Value: "proceed"})
	metricGateDecisionsWarn = metrics.Default.Counter("dqm_gate_decisions_total",
		"Gate decisions by resulting action.",
		metrics.Label{Name: "action", Value: "warn"})
	metricGateDecisionsQuarantine = metrics.Default.Counter("dqm_gate_decisions_total",
		"Gate decisions by resulting action.",
		metrics.Label{Name: "action", Value: "quarantine"})
	metricGateTransitions = metrics.Default.Counter("dqm_gate_transitions_total",
		"Gate decision action changes (the alerting edge: webhooks fire here, not per evaluation).")
	metricWebhookDeliveries = metrics.Default.Counter("dqm_webhook_deliveries_total",
		"Webhook deliveries acknowledged with a 2xx.")
	metricWebhookRetries = metrics.Default.Counter("dqm_webhook_retries_total",
		"Webhook delivery retries (failed attempts that will be retried with backoff).")
	metricWebhookFailures = metrics.Default.Counter("dqm_webhook_failures_total",
		"Webhook dead letters: deliveries abandoned after exhausting retries or dropped on a full queue.")
)
