package policy

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dqm/internal/metrics"
)

// DispatcherConfig tunes the shared webhook delivery plane.
type DispatcherConfig struct {
	// QueueSize bounds the pending-delivery queue; enqueues beyond it are
	// dropped and counted as dead letters (a slow receiver must not back up
	// into gate evaluation). Default 256.
	QueueSize int
	// Workers is the delivery concurrency. Default 2.
	Workers int
	// MaxAttempts bounds attempts per delivery (1 = no retries). Default 3.
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt up to
	// MaxBackoff. Defaults 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Timeout bounds one HTTP attempt. Default 5s.
	Timeout time.Duration
	// Client overrides the HTTP client (tests). Default http.DefaultClient
	// with per-attempt context timeouts.
	Client *http.Client
}

func (c *DispatcherConfig) withDefaults() DispatcherConfig {
	out := *c
	if out.QueueSize <= 0 {
		out.QueueSize = 256
	}
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.BaseBackoff <= 0 {
		out.BaseBackoff = 100 * time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 5 * time.Second
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Second
	}
	if out.Client == nil {
		out.Client = http.DefaultClient
	}
	return out
}

// Delivery is one webhook POST: the pre-serialized decision document and the
// per-policy delivery overrides.
type Delivery struct {
	URL  string
	Body []byte
	// Timeout and MaxAttempts override the dispatcher defaults when positive.
	Timeout     time.Duration
	MaxAttempts int
}

// Dispatcher is the bounded asynchronous webhook delivery plane shared by
// every gate in a server. Deliveries are fire-and-forget from the gate's
// perspective: the pump enqueues and returns; workers POST with retry and
// exponential backoff; exhausted or overflowed deliveries become dead
// letters (counted, never blocking).
type Dispatcher struct {
	cfg   DispatcherConfig
	queue chan Delivery
	stop  chan struct{}
	wg    sync.WaitGroup

	deliveries  atomic.Int64
	deadLetters atomic.Int64
	closeOnce   sync.Once
}

// NewDispatcher starts the worker pool.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	d := &Dispatcher{cfg: cfg.withDefaults(), stop: make(chan struct{})}
	d.queue = make(chan Delivery, d.cfg.QueueSize)
	d.wg.Add(d.cfg.Workers)
	for i := 0; i < d.cfg.Workers; i++ {
		go d.worker()
	}
	return d
}

// Enqueue submits a delivery. It never blocks: a full queue drops the
// delivery, counts a dead letter, and returns false.
func (d *Dispatcher) Enqueue(del Delivery) bool {
	select {
	case d.queue <- del:
		return true
	default:
		d.deadLetters.Add(1)
		metricWebhookFailures.Inc()
		return false
	}
}

// Deliveries returns the count of successful deliveries.
func (d *Dispatcher) Deliveries() int64 { return d.deliveries.Load() }

// DeadLetters returns the count of deliveries abandoned after exhausting
// retries or dropped on a full queue.
func (d *Dispatcher) DeadLetters() int64 { return d.deadLetters.Load() }

// Close stops the workers. In-flight attempts are abandoned at their next
// stop check; queued deliveries are dropped without being counted as dead
// letters (shutdown, not failure).
func (d *Dispatcher) Close() {
	d.closeOnce.Do(func() {
		close(d.stop)
		d.wg.Wait()
	})
}

func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		case del := <-d.queue:
			d.deliver(del)
		}
	}
}

func (d *Dispatcher) deliver(del Delivery) {
	attempts := del.MaxAttempts
	if attempts <= 0 {
		attempts = d.cfg.MaxAttempts
	}
	timeout := del.Timeout
	if timeout <= 0 {
		timeout = d.cfg.Timeout
	}
	backoff := d.cfg.BaseBackoff
	for attempt := 1; ; attempt++ {
		start := time.Now()
		ok := d.attempt(del.URL, del.Body, timeout)
		metricWebhookDeliverySeconds.Observe(time.Since(start).Seconds())
		if ok {
			d.deliveries.Add(1)
			metricWebhookDeliveries.Inc()
			return
		}
		if attempt >= attempts {
			d.deadLetters.Add(1)
			metricWebhookFailures.Inc()
			return
		}
		metricWebhookRetries.Inc()
		select {
		case <-d.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > d.cfg.MaxBackoff {
			backoff = d.cfg.MaxBackoff
		}
	}
}

func (d *Dispatcher) attempt(url string, body []byte, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// metricWebhookDeliverySeconds lives here rather than metrics.go so the
// histogram's bucket choice sits next to the code that observes it.
var metricWebhookDeliverySeconds = metrics.Default.Histogram(
	"dqm_webhook_delivery_seconds",
	"Latency of webhook delivery attempts.",
	metrics.DurationBuckets,
)
