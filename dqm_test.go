package dqm

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	rec := NewRecorder(10, Defaults())
	if rec.NumItems() != 10 || rec.TotalVotes() != 0 || rec.NumWorkers() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	rec.Record(0, 1, true)
	rec.Record(0, 2, false)
	rec.Record(3, 1, true)
	rec.EndTask()

	if rec.TotalVotes() != 3 || rec.NumWorkers() != 2 {
		t.Fatalf("votes=%d workers=%d", rec.TotalVotes(), rec.NumWorkers())
	}
	e := rec.Estimates()
	if e.Nominal != 2 {
		t.Fatalf("Nominal = %v", e.Nominal)
	}
	if e.Voting != 1 { // item 0 is tied, item 3 is 1-0 dirty
		t.Fatalf("Voting = %v", e.Voting)
	}
	if !rec.MajorityDirty(3) || rec.MajorityDirty(0) {
		t.Fatal("MajorityDirty wrong")
	}
}

func TestRecordVote(t *testing.T) {
	rec := NewRecorder(5, Defaults())
	rec.RecordVote(Vote{Item: 2, Worker: 9, Dirty: true})
	if rec.Estimates().Nominal != 1 {
		t.Fatal("RecordVote did not register")
	}
}

func TestRemainingFloorsAtZero(t *testing.T) {
	e := Estimates{Voting: 10, Switch: SwitchEstimate{Total: 7}}
	if got := e.Remaining(); got != 0 {
		t.Fatalf("Remaining = %v", got)
	}
	e = Estimates{Voting: 10, Switch: SwitchEstimate{Total: 14}}
	if got := e.Remaining(); got != 4 {
		t.Fatalf("Remaining = %v", got)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Defaults()
	if cfg.VChaoShift != 1 || cfg.TiePolicy != TieFlip || cfg.CapToPopulation {
		t.Fatalf("Defaults = %+v", cfg)
	}
}

func TestExtrapolate(t *testing.T) {
	if got := Extrapolate(4, 10, 1000); got != 400 {
		t.Fatalf("Extrapolate = %v", got)
	}
}

func TestCapToPopulation(t *testing.T) {
	cfg := Defaults()
	cfg.CapToPopulation = true
	rec := NewRecorder(10, cfg)
	for i := 0; i < 10; i++ {
		rec.Record(i, i, true) // all singletons: uncapped Chao92 explodes
	}
	rec.EndTask()
	e := rec.Estimates()
	if e.Chao92 > 10 || e.Switch.Total > 10 {
		t.Fatalf("cap violated: %+v", e)
	}
}

func TestTiePolicyAffectsSwitches(t *testing.T) {
	// Item 0 sees D then C: two switches under tie-flip (the tie flips the
	// consensus back) but one under strict majority (ties are sticky, the
	// second vote merely rediscovers). Item 1 sees a lone D. The switch
	// fingerprints — and hence the remaining-switch estimates — differ.
	run := func(p TiePolicy) float64 {
		cfg := Defaults()
		cfg.TiePolicy = p
		rec := NewRecorder(2, cfg)
		rec.Record(0, 0, true)
		rec.Record(1, 0, true)
		rec.EndTask()
		rec.Record(0, 1, false)
		rec.EndTask()
		return rec.Estimates().Switch.RemainingSwitches
	}
	if run(TieFlip) == run(StrictMajority) {
		t.Fatal("tie policy had no effect on switch estimation")
	}
}

// TestEndToEndConvergence is the headline integration test: a fallible crowd
// cleans a planted population and the SWITCH estimate lands near the truth
// while the majority count still undershoots.
func TestEndToEndConvergence(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	const (
		n      = 600
		nDirty = 80
	)
	dirty := make(map[int]bool, nDirty)
	for len(dirty) < nDirty {
		dirty[rng.IntN(n)] = true
	}
	rec := NewRecorder(n, Defaults())
	for task := 0; task < 700; task++ {
		worker := rng.IntN(50)
		for _, item := range rng.Perm(n)[:12] {
			vote := dirty[item]
			if vote && rng.Float64() < 0.25 {
				vote = false
			} else if !dirty[item] && rng.Float64() < 0.01 {
				vote = true
			}
			rec.Record(item, worker, vote)
		}
		rec.EndTask()
	}
	e := rec.Estimates()
	if math.Abs(e.Switch.Total-nDirty) > 0.2*nDirty {
		t.Fatalf("SWITCH %v not within 20%% of %d (voting %v)", e.Switch.Total, nDirty, e.Voting)
	}
	// The crowd misses 25% per view, so the majority should still trail the
	// truth — the gap SWITCH exists to close.
	if e.Voting >= float64(nDirty) {
		t.Skipf("majority already converged (%v); nothing to predict", e.Voting)
	}
	if e.Switch.Total < e.Voting {
		t.Fatalf("SWITCH %v below VOTING %v despite an increasing trend", e.Switch.Total, e.Voting)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder(5, Defaults())
	rec.Record(0, 0, true)
	rec.EndTask()
	rec.Reset()
	if rec.TotalVotes() != 0 {
		t.Fatal("Reset left votes")
	}
	e := rec.Estimates()
	if e.Nominal != 0 || e.Switch.Total != 0 {
		t.Fatalf("Reset left estimates: %+v", e)
	}
}

func TestSwitchEstimateTrendFlags(t *testing.T) {
	rec := NewRecorder(2000, Defaults())
	// Keep marking fresh items dirty: trend up.
	for task := 0; task < 40; task++ {
		for i := 0; i < 10; i++ {
			rec.Record(task*10+i, task, true)
		}
		rec.EndTask()
	}
	e := rec.Estimates()
	if !e.Switch.TrendUp || e.Switch.TrendDown {
		t.Fatalf("trend flags wrong: %+v", e.Switch)
	}
}

func TestConfidenceIntervals(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	cfg := Defaults()
	cfg.TrackConfidence = true
	rec := NewRecorder(200, cfg)
	dirty := func(i int) bool { return i%8 == 0 } // 25 errors
	for task := 0; task < 250; task++ {
		worker := rng.IntN(30)
		for _, item := range rng.Perm(200)[:10] {
			vote := dirty(item)
			if vote && rng.Float64() < 0.15 {
				vote = false
			}
			rec.Record(item, worker, vote)
		}
		rec.EndTask()
	}
	sci, err := rec.SwitchCI(200, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	point := rec.Estimates().Switch.Total
	if !sci.Contains(point) {
		t.Fatalf("SWITCH CI [%v,%v] misses point %v", sci.Lo, sci.Hi, point)
	}
	cci, err := rec.Chao92CI(200, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cci.Lo > cci.Hi || cci.Level != 0.95 {
		t.Fatalf("bad Chao92 CI %+v", cci)
	}
}

func TestSwitchCIRequiresTracking(t *testing.T) {
	rec := NewRecorder(10, Defaults())
	rec.Record(0, 0, true)
	rec.EndTask()
	if _, err := rec.SwitchCI(100, 0.95); err == nil {
		t.Fatal("SwitchCI without TrackConfidence accepted")
	}
}
