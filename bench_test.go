// Benchmarks regenerating the paper's evaluation. Each BenchmarkFig* target
// runs the corresponding figure driver end to end (dataset planting, crowd
// simulation, permutation-averaged estimation) on a reduced configuration;
// run `go run ./cmd/dqm-experiments -figure all` for the full-size series
// recorded in EXPERIMENTS.md.
//
// Micro-benchmarks cover the hot paths (vote ingestion, switch tracking,
// estimator evaluation, similarity scoring), and BenchmarkAblation* measure
// the design alternatives called out in DESIGN.md §5.
package dqm

import (
	"testing"

	"dqm/internal/crowd"
	"dqm/internal/dataset"
	"dqm/internal/estimator"
	"dqm/internal/experiment"
	"dqm/internal/similarity"
	"dqm/internal/stats"
	"dqm/internal/switchstat"
	"dqm/internal/votes"
	"dqm/internal/xrand"
)

// benchOpts returns a reduced-but-representative configuration; the seed
// varies per iteration so the compiler/runtime cannot cache across runs.
func benchOpts(i int) experiment.Options {
	return experiment.Options{Seed: uint64(i) + 1, Permutations: 2, TaskScale: 0.2}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	driver, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		figs := driver(benchOpts(i))
		if len(figs) == 0 {
			b.Fatal("driver produced no figures")
		}
	}
}

// One bench per figure of the paper's evaluation (Section 6) plus the
// §3.2.1 worked examples.

func BenchmarkFig2aExtrapolationVariance(b *testing.B) { benchFigure(b, "2a") }
func BenchmarkFig2bExtrapolationWorkers(b *testing.B)  { benchFigure(b, "2b") }
func BenchmarkFig3Restaurant(b *testing.B)             { benchFigure(b, "3") }
func BenchmarkFig4Product(b *testing.B)                { benchFigure(b, "4") }
func BenchmarkFig5Address(b *testing.B)                { benchFigure(b, "5") }
func BenchmarkFig6aPrecisionSweep(b *testing.B)        { benchFigure(b, "6a") }
func BenchmarkFig6bCoverageSweep(b *testing.B)         { benchFigure(b, "6b") }
func BenchmarkFig7aFalseNegOnly(b *testing.B)          { benchFigure(b, "7a") }
func BenchmarkFig7bFalsePosOnly(b *testing.B)          { benchFigure(b, "7b") }
func BenchmarkFig7cBothErrors(b *testing.B)            { benchFigure(b, "7c") }
func BenchmarkFig8EpsilonSweep(b *testing.B)           { benchFigure(b, "8") }
func BenchmarkSec321WorkedExamples(b *testing.B)       { benchFigure(b, "sec321") }

// Ablation benches for the design choices in DESIGN.md §5.

func BenchmarkAblationSwitchVariants(b *testing.B) { benchFigure(b, "ablation-switch") }
func BenchmarkAblationVChaoShift(b *testing.B)     { benchFigure(b, "ablation-vchao") }
func BenchmarkAblationBaselines(b *testing.B)      { benchFigure(b, "ablation-baselines") }

// Extension studies: the §8 algorithmic-cleaning committee, the §1.2
// quality-control comparison and the §2.2.1 fatigue model.
func BenchmarkExtAlgorithmicCommittee(b *testing.B) { benchFigure(b, "ext-algorithmic") }
func BenchmarkExtQualityEM(b *testing.B)            { benchFigure(b, "ext-quality") }
func BenchmarkExtFatigue(b *testing.B)              { benchFigure(b, "ext-fatigue") }
func BenchmarkExtRedundancy(b *testing.B)           { benchFigure(b, "ext-redundancy") }

func BenchmarkBootstrapSwitchCI(b *testing.B) {
	pop := dataset.SimulationPopulation(2)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.01, FNRate: 0.1},
		ItemsPerTask: 15,
		Seed:         2,
	})
	e := estimator.NewSwitch(pop.N(), estimator.SwitchConfig{RetainLedgers: true})
	for _, task := range sim.Tasks(300) {
		for _, v := range task.Votes() {
			e.Observe(v)
		}
		e.EndTask()
	}
	rng := xrand.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.BootstrapSwitch(50, 0.95, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the streaming hot paths.

func benchVoteStream(n, votesN int, seed uint64) []votes.Vote {
	rng := xrand.New(seed)
	out := make([]votes.Vote, votesN)
	for i := range out {
		out[i] = votes.Vote{
			Item:   rng.IntN(n),
			Worker: rng.IntN(40),
			Label:  votes.Label(rng.IntN(2)),
		}
	}
	return out
}

func BenchmarkMatrixAdd(b *testing.B) {
	const n = 10000
	stream := benchVoteStream(n, 100000, 1)
	m := votes.NewMatrix(n, votes.WithoutHistory())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(stream[i%len(stream)])
	}
}

func BenchmarkSwitchTrackerAdd(b *testing.B) {
	const n = 10000
	stream := benchVoteStream(n, 100000, 2)
	tr := switchstat.NewTracker(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AddVote(stream[i%len(stream)])
	}
}

func BenchmarkChao92Estimate(b *testing.B) {
	const n = 5000
	m := votes.NewMatrix(n, votes.WithoutHistory())
	for _, v := range benchVoteStream(n, 50000, 3) {
		m.Add(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = estimator.Chao92(m)
	}
}

func BenchmarkSwitchEstimate(b *testing.B) {
	const n = 5000
	e := estimator.NewSwitch(n, estimator.SwitchConfig{})
	for i, v := range benchVoteStream(n, 50000, 4) {
		e.Observe(v)
		if i%10 == 9 {
			e.EndTask()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Estimate()
	}
}

func BenchmarkSuiteObserveTask(b *testing.B) {
	const n = 5000
	suite := estimator.NewSuite(n, estimator.SuiteConfig{})
	stream := benchVoteStream(n, 100000, 5)
	task := make([]votes.Vote, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(task, stream[(i*10)%(len(stream)-10):])
		suite.ObserveTask(task)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	a := "Ritz-Carlton Cafe Buckhead Atlanta"
	c := "Cafe Ritz-Carlton (buckhead) atl"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = similarity.Levenshtein(a, c)
	}
}

func BenchmarkEditSimilarityAtLeast(b *testing.B) {
	a := "ritz carlton cafe buckhead atlanta"
	c := "totally different product listing"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = similarity.EditSimilarityAtLeast(a, c, 0.5)
	}
}

func BenchmarkTokenSortedEditSimilarity(b *testing.B) {
	a := "Adobe Photoshop Elements 5.0 Deluxe"
	c := "photoshop elements deluxe 5.0 adobe"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = similarity.TokenSortedEditSimilarity(a, c)
	}
}

// benchRunConfig assembles the permutation-replay workload the parallelism
// benchmarks share: the restaurant population with the paper's r=10 replays.
func benchRunConfig(parallelism int) experiment.RunConfig {
	pop := dataset.RestaurantCandidates(1)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.05, FNRate: 0.25, Jitter: 0.25},
		ItemsPerTask: 10,
		Seed:         1,
	})
	return experiment.RunConfig{
		Population:   pop,
		Tasks:        sim.Tasks(200),
		Permutations: 10,
		Seed:         1,
		Parallelism:  parallelism,
	}
}

// BenchmarkRunSequential and BenchmarkRunParallel measure the replay engine
// with a single worker and with one worker per core; their ratio is the
// parallel speedup (1.0 on single-core machines).
func BenchmarkRunSequential(b *testing.B) {
	cfg := benchRunConfig(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiment.Run(cfg)
	}
}

func BenchmarkRunParallel(b *testing.B) {
	cfg := benchRunConfig(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiment.Run(cfg)
	}
}

func BenchmarkCrowdSimulatorAppendTask(b *testing.B) {
	pop := dataset.SimulationPopulation(1)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.01, FNRate: 0.1},
		ItemsPerTask: 15,
		Seed:         1,
	})
	var buf []votes.Vote
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sim.AppendTask(buf[:0])
	}
}

func BenchmarkCrowdSimulatorTask(b *testing.B) {
	pop := dataset.SimulationPopulation(1)
	sim := crowd.NewSimulator(crowd.Config{
		Truth:        pop.Truth.IsDirty,
		N:            pop.N(),
		Profile:      crowd.Profile{FPRate: 0.01, FNRate: 0.1},
		ItemsPerTask: 15,
		Seed:         1,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.NextTask()
	}
}

func BenchmarkFingerprintShift(b *testing.B) {
	f := stats.Freq{0, 100, 50, 25, 12, 6, 3, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Shift(1)
	}
}
