package dqm

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestEngineSessionLifecycle(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	sess, err := eng.CreateSession("ds-1", 10, Defaults())
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if sess.ID() != "ds-1" || sess.NumItems() != 10 {
		t.Fatalf("session identity wrong: %q n=%d", sess.ID(), sess.NumItems())
	}
	if _, err := eng.CreateSession("ds-1", 10, Defaults()); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := eng.CreateSession("ds-2", 10, Config{Estimators: []string{"NOPE"}}); err == nil {
		t.Fatal("unknown estimator name accepted")
	}
	got, ok := eng.Session("ds-1")
	if !ok || got.ID() != "ds-1" {
		t.Fatal("Session lookup failed")
	}
	if ids := eng.SessionIDs(); !reflect.DeepEqual(ids, []string{"ds-1"}) {
		t.Fatalf("SessionIDs = %v", ids)
	}
	if !eng.DeleteSession("ds-1") || eng.NumSessions() != 0 {
		t.Fatal("DeleteSession bookkeeping wrong")
	}
}

// TestSessionMatchesRecorder pins the compat contract: a session fed the
// same votes as a Recorder reports identical estimates (the Recorder IS one
// session).
func TestSessionMatchesRecorder(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	sess, err := eng.CreateSession("ds", 50, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(50, Defaults())
	for task := 0; task < 30; task++ {
		var batch []Vote
		for i := 0; i < 8; i++ {
			v := Vote{Item: (task*3 + i) % 50, Worker: task % 7, Dirty: (task+i)%4 != 0}
			batch = append(batch, v)
			rec.RecordVote(v)
		}
		rec.EndTask()
		if err := sess.AppendVotes(batch, true); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := sess.Estimates(), rec.Estimates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("session %+v != recorder %+v", got, want)
	}
	if sess.Tasks() != 30 || sess.TotalVotes() != rec.TotalVotes() {
		t.Fatalf("stream counters diverged: tasks=%d votes=%d vs %d", sess.Tasks(), sess.TotalVotes(), rec.TotalVotes())
	}
}

func TestSessionAppendValidates(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	sess, err := eng.CreateSession("ds", 5, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AppendVotes([]Vote{{Item: 9, Worker: 0, Dirty: true}}, true); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	if sess.TotalVotes() != 0 {
		t.Fatal("rejected batch partially applied")
	}
}

func TestSessionSnapshotRestore(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	sess, err := eng.CreateSession("ds", 40, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	feed := func(from, to int) {
		for task := from; task < to; task++ {
			var batch []Vote
			for i := 0; i < 6; i++ {
				batch = append(batch, Vote{Item: (task*5 + i) % 40, Worker: task % 5, Dirty: i%3 != 0})
			}
			if err := sess.AppendVotes(batch, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(0, 20)
	snap := sess.Snapshot()
	if snap.Tasks() != 20 || snap.NumItems() != 40 {
		t.Fatalf("snapshot metadata wrong: %d tasks, %d items", snap.Tasks(), snap.NumItems())
	}
	atSnap := sess.Estimates()
	if got := snap.Estimates(); !reflect.DeepEqual(got, atSnap) {
		t.Fatalf("snapshot estimates %+v != session %+v", got, atSnap)
	}
	feed(20, 40)
	final := sess.Estimates()
	if err := sess.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := sess.Estimates(); !reflect.DeepEqual(got, atSnap) {
		t.Fatalf("restored estimates %+v != snapshot %+v", got, atSnap)
	}
	feed(20, 40)
	if got := sess.Estimates(); !reflect.DeepEqual(got, final) {
		t.Fatalf("replay after restore %+v != original %+v", got, final)
	}
	if err := sess.Restore(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestSessionEstimatorSelection(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	cfg := Defaults()
	cfg.Estimators = []string{"VOTING", "SWITCH"}
	sess, err := eng.CreateSession("ds", 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.EstimatorNames(); !reflect.DeepEqual(got, cfg.Estimators) {
		t.Fatalf("EstimatorNames = %v, want %v", got, cfg.Estimators)
	}
	for i := 0; i < 10; i++ {
		sess.Record(i%5, i, true)
	}
	sess.EndTask()
	e := sess.Estimates()
	if e.Voting == 0 || e.Switch.Total == 0 {
		t.Fatalf("selected estimators missing: %+v", e)
	}
	if e.Chao92 != 0 || e.Nominal != 0 {
		t.Fatalf("unselected estimators computed: %+v", e)
	}
}

func TestEstimatorNamesIncludesStandardSuite(t *testing.T) {
	names := EstimatorNames()
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for _, want := range []string{"NOMINAL", "VOTING", "CHAO92", "V-CHAO", "SWITCH"} {
		if !set[want] {
			t.Errorf("EstimatorNames missing %q (got %v)", want, names)
		}
	}
}

// TestEngineConcurrentSessions checks cross-session isolation under
// concurrency: every session sees exactly its own stream.
func TestEngineConcurrentSessions(t *testing.T) {
	eng := NewEngine(EngineConfig{Shards: 8})
	const nSessions = 6
	var wg sync.WaitGroup
	for g := 0; g < nSessions; g++ {
		sess, err := eng.CreateSession(fmt.Sprintf("ds-%d", g), 30, Defaults())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(sess *Session, g int) {
			defer wg.Done()
			for task := 0; task < 20; task++ {
				var batch []Vote
				for i := 0; i <= g; i++ { // session g ingests g+1 votes/task
					batch = append(batch, Vote{Item: (task + i) % 30, Worker: task, Dirty: true})
				}
				if err := sess.AppendVotes(batch, true); err != nil {
					t.Error(err)
					return
				}
				sess.Estimates()
			}
		}(sess, g)
	}
	wg.Wait()
	for g := 0; g < nSessions; g++ {
		sess, ok := eng.Session(fmt.Sprintf("ds-%d", g))
		if !ok {
			t.Fatalf("session ds-%d vanished", g)
		}
		if got, want := sess.TotalVotes(), int64(20*(g+1)); got != want {
			t.Fatalf("session ds-%d votes = %d, want %d", g, got, want)
		}
	}
}

// ingestDeterministic streams a reproducible vote pattern into a session.
func ingestDeterministic(t *testing.T, s *Session, tasks int) {
	t.Helper()
	for task := 0; task < tasks; task++ {
		batch := make([]Vote, 0, 6)
		for k := 0; k < 6; k++ {
			item := (task*7 + k*3) % s.NumItems()
			batch = append(batch, Vote{Item: item, Worker: k, Dirty: (task+k*item)%3 == 0})
		}
		if err := s.AppendVotes(batch, true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenEngineRecoversBitIdentical(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine(dir, EngineConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Durable() {
		t.Fatal("OpenEngine produced a non-durable engine")
	}
	cfg := Defaults()
	cfg.TrackConfidence = true
	s, err := eng.CreateSession("orders", 40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestDeterministic(t, s, 60)
	want := s.Estimates()
	wantCI, err := s.SwitchCI(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := OpenEngine(dir, EngineConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	s2, ok := eng2.Session("orders")
	if !ok {
		t.Fatal("session not recovered")
	}
	if got := s2.Estimates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered estimates differ:\n got %+v\nwant %+v", got, want)
	}
	// Config survived too: the CI machinery needs TrackConfidence and the
	// deterministic bootstrap seed, so identical intervals prove both.
	gotCI, err := s2.SwitchCI(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if gotCI != wantCI {
		t.Fatalf("recovered CI %+v != %+v", gotCI, wantCI)
	}
	// In-memory reference: journaling must not change estimator semantics.
	ref := NewRecorder(40, cfg)
	ingestDeterministic(t, &ref.Session, 60)
	if got := ref.Estimates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("durable ingest diverged from in-memory recorder")
	}
}

func TestDurableSessionRejectsRestore(t *testing.T) {
	eng, err := OpenEngine(t.TempDir(), EngineConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s, err := eng.CreateSession("no-restore", 10, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(s.Snapshot()); err == nil {
		t.Fatal("Restore on durable session succeeded")
	}
	// Snapshots themselves still work (read-only checkpoints).
	ingestDeterministic(t, s, 5)
	snap := s.Snapshot()
	if snap.TotalVotes() != s.TotalVotes() {
		t.Fatal("snapshot of durable session broken")
	}
}

func TestDurableDeleteAndRecreate(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine(dir, EngineConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.CreateSession("tmp", 10, Defaults()); err != nil {
		t.Fatal(err)
	}
	if !eng.DeleteSession("tmp") {
		t.Fatal("delete failed")
	}
	if _, err := eng.CreateSession("tmp", 10, Defaults()); err != nil {
		t.Fatalf("recreate after delete: %v", err)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
