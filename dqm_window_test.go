package dqm

import (
	"reflect"
	"testing"
)

func windowedDefaults() Config {
	cfg := Defaults()
	cfg.Window = &WindowConfig{Size: 8, Stride: 4, DecayAlpha: 0.5}
	return cfg
}

// TestPublicWindowedSession exercises the windowed read plane through the
// public API: availability progression, spans, and divergence of windowed vs
// all-time views.
func TestPublicWindowedSession(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	s, err := eng.CreateSession("win", 50, windowedDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Windowed() {
		t.Fatal("Windowed() = false on a windowed session")
	}
	if _, err := s.WindowEstimates(WindowLast); err == nil {
		t.Fatal("WindowLast available before any window completed")
	}
	ingestDeterministic(t, s, 20)
	last, err := s.WindowEstimates(WindowLast)
	if err != nil {
		t.Fatal(err)
	}
	if last.Start != 12 || last.End != 20 || !last.Complete || last.Tasks != 8 {
		t.Fatalf("last window span [%d,%d) tasks=%d complete=%v, want [12,20) 8 true",
			last.Start, last.End, last.Tasks, last.Complete)
	}
	cur, err := s.WindowEstimates(WindowCurrent)
	if err != nil {
		t.Fatal(err)
	}
	if cur.End != 20 || cur.Complete {
		t.Fatalf("current window end=%d complete=%v, want 20 false", cur.End, cur.Complete)
	}
	if _, err := s.WindowEstimates(WindowDecayed); err != nil {
		t.Fatal(err)
	}

	// A plain session rejects windowed reads; Windowed reports it.
	plain, err := eng.CreateSession("plain", 50, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Windowed() {
		t.Fatal("plain session claims windows")
	}
	if _, err := plain.WindowEstimates(WindowCurrent); err == nil {
		t.Fatal("plain session served a windowed read")
	}

	// Bad window configs are rejected at create time, not panic time.
	bad := Defaults()
	bad.Window = &WindowConfig{Size: 10, Stride: 20}
	if _, err := eng.CreateSession("bad", 50, bad); err == nil {
		t.Fatal("invalid window config accepted")
	}
}

// TestPublicVersionAndCacheSemantics: Version moves with mutations only, and
// cached reads equal recomputed reads.
func TestPublicVersionAndCacheSemantics(t *testing.T) {
	rec := NewRecorder(20, Defaults())
	if rec.Version() != 0 {
		t.Fatalf("fresh version = %d", rec.Version())
	}
	rec.Record(3, 0, true)
	rec.EndTask()
	v := rec.Version()
	if v != 2 {
		t.Fatalf("version after two mutations = %d", v)
	}
	e1 := rec.Estimates()
	e2 := rec.Estimates()
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("repeated reads differ")
	}
	if rec.Version() != v {
		t.Fatal("reads moved the version")
	}
}

// TestWindowedDurableSessionPublicAPI: windowed sessions survive engine
// reopen with identical windowed views (rotation records included).
func TestWindowedDurableSessionPublicAPI(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine(dir, EngineConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.CreateSession("win", 40, windowedDefaults())
	if err != nil {
		t.Fatal(err)
	}
	ingestDeterministic(t, s, 30)
	wantAll := s.Estimates()
	wantLast, err := s.WindowEstimates(WindowLast)
	if err != nil {
		t.Fatal(err)
	}
	wantDec, err := s.WindowEstimates(WindowDecayed)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := OpenEngine(dir, EngineConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	s2, ok := eng2.Session("win")
	if !ok {
		t.Fatal("windowed session not recovered")
	}
	if got := s2.Estimates(); !reflect.DeepEqual(got, wantAll) {
		t.Fatal("all-time estimates diverge after reopen")
	}
	gotLast, err := s2.WindowEstimates(WindowLast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLast, wantLast) {
		t.Fatalf("last window diverges after reopen:\n got %+v\nwant %+v", gotLast, wantLast)
	}
	gotDec, err := s2.WindowEstimates(WindowDecayed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDec, wantDec) {
		t.Fatal("decayed aggregate diverges after reopen")
	}
}

// TestParseWindowKindPublic: wire names round-trip.
func TestParseWindowKindPublic(t *testing.T) {
	for _, k := range []WindowKind{WindowCurrent, WindowLast, WindowDecayed} {
		got, err := ParseWindowKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseWindowKind(%q) = (%v, %v)", k.String(), got, err)
		}
	}
	if _, err := ParseWindowKind("all"); err == nil {
		t.Fatal("ParseWindowKind accepted garbage")
	}
}
